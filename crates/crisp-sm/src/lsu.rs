//! The load-store unit: coalescing and L1-port arbitration.
//!
//! A memory instruction's per-lane addresses are coalesced into distinct
//! 32 B sectors at issue; the LSU then presents at most
//! [`SmConfig::l1_ports`] sectors per cycle to the unified L1. A texture
//! fetch that touches many sectors therefore occupies the L1 data port for
//! several cycles — this is the "L1 data port pressure" the paper's LoD
//! case study shows is exaggerated 6× when mipmapping is not modelled.

use std::collections::VecDeque;
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_mem::{L1AccessResult, MemReq, ReqToken, SmMemPort};
use crisp_trace::{DataClass, Space, StreamId};

use crate::config::SmConfig;

/// One memory instruction queued in the LSU.
#[derive(Debug, Clone)]
pub(crate) struct LsuEntry {
    pub stream: StreamId,
    pub class: DataClass,
    pub space: Space,
    pub is_load: bool,
    /// Distinct sector addresses left to present (empty for shared memory,
    /// which is modelled as one conflict-free port slot).
    pub sectors: Vec<u64>,
    pub next: usize,
    /// Token id shared by every sector of this instruction.
    pub inflight_id: u64,
}

/// Something the LSU resolved this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LsuEvent {
    /// A sector was satisfied locally (L1 hit or shared memory); its data is
    /// valid at `ready_at`.
    Ready { inflight_id: u64, ready_at: u64 },
    /// A sector went down the hierarchy; a completion with the same token id
    /// will arrive later.
    Sent { inflight_id: u64 },
}

/// The per-SM load-store unit.
#[derive(Debug)]
pub struct Lsu {
    queue: VecDeque<LsuEntry>,
    depth: usize,
    sectors_issued: u64,
}

impl Lsu {
    /// An empty LSU with the configured queue depth.
    pub fn new(cfg: &SmConfig) -> Self {
        Lsu {
            queue: VecDeque::new(),
            depth: cfg.lsu_queue_depth,
            sectors_issued: 0,
        }
    }

    /// Whether another memory instruction can be accepted this cycle.
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.depth
    }

    /// Whether any instruction is still being processed.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Memory instructions currently queued (issued but not fully presented
    /// to the L1). Used by diagnostic snapshots.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total sectors presented to the L1/shared memory so far.
    pub fn sectors_issued(&self) -> u64 {
        self.sectors_issued
    }

    pub(crate) fn push(&mut self, e: LsuEntry) {
        debug_assert!(self.has_room(), "caller must check has_room");
        self.queue.push_back(e);
    }

    /// Work the head of the queue, presenting up to `cfg.l1_ports` sectors
    /// to the SM's private memory port.
    pub(crate) fn process(
        &mut self,
        sm_id: usize,
        now: u64,
        cfg: &SmConfig,
        port: &mut SmMemPort,
    ) -> Vec<LsuEvent> {
        let mut events = Vec::new();
        let mut budget = cfg.l1_ports;
        while budget > 0 {
            let Some(head) = self.queue.front_mut() else {
                break;
            };
            // Shared-memory instructions: one conflict-free port slot.
            if head.space == Space::Shared {
                budget -= 1;
                self.sectors_issued += 1;
                if head.is_load {
                    events.push(LsuEvent::Ready {
                        inflight_id: head.inflight_id,
                        ready_at: now + cfg.smem_latency,
                    });
                }
                self.queue.pop_front();
                continue;
            }
            if head.next >= head.sectors.len() {
                self.queue.pop_front();
                continue;
            }
            let addr = head.sectors[head.next];
            let token = ReqToken {
                sm: sm_id as u16,
                id: head.inflight_id,
            };
            if head.is_load {
                let req = MemReq::read(addr, head.stream, head.class, token);
                match port.read(req, now) {
                    L1AccessResult::Hit { ready_at } => {
                        events.push(LsuEvent::Ready {
                            inflight_id: head.inflight_id,
                            ready_at,
                        });
                    }
                    L1AccessResult::Pending => {
                        events.push(LsuEvent::Sent {
                            inflight_id: head.inflight_id,
                        });
                    }
                    L1AccessResult::Stall => break, // retry same sector next cycle
                }
            } else {
                let req = MemReq::write(addr, head.stream, head.class, token);
                port.write(req);
            }
            head.next += 1;
            budget -= 1;
            self.sectors_issued += 1;
            if head.next >= head.sectors.len() {
                self.queue.pop_front();
            }
        }
        events
    }
}

impl CheckpointState for LsuEntry {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.stream(self.stream)?;
        w.class(self.class)?;
        w.space(self.space)?;
        w.bool(self.is_load)?;
        w.len(self.sectors.len())?;
        for &s in &self.sectors {
            w.u64(s)?;
        }
        w.u64(self.next as u64)?;
        w.u64(self.inflight_id)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let stream = r.stream()?;
        let class = r.class()?;
        let space = r.space()?;
        let is_load = r.bool()?;
        let n = r.len(1 << 16)?;
        let mut sectors = Vec::with_capacity(n);
        for _ in 0..n {
            sectors.push(r.u64()?);
        }
        let next = r.u64()? as usize;
        if next > sectors.len() {
            return Err(bad("lsu entry cursor past its sector list"));
        }
        Ok(LsuEntry {
            stream,
            class,
            space,
            is_load,
            sectors,
            next,
            inflight_id: r.u64()?,
        })
    }
}

impl CheckpointState for Lsu {
    type SaveCtx<'a> = ();
    /// The SM configuration, which fixes the queue depth.
    type RestoreCtx<'a> = &'a SmConfig;

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.len(self.queue.len())?;
        for e in &self.queue {
            e.save(w, ())?;
        }
        w.u64(self.sectors_issued)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, cfg: &SmConfig) -> io::Result<Self> {
        let n = r.len(cfg.lsu_queue_depth)?;
        let mut queue = VecDeque::with_capacity(n);
        for _ in 0..n {
            queue.push_back(LsuEntry::restore(r, ())?);
        }
        Ok(Lsu {
            queue,
            depth: cfg.lsu_queue_depth,
            sectors_issued: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_mem::{CacheGeometry, MemConfig};

    fn mem_cfg() -> MemConfig {
        MemConfig {
            n_sms: 1,
            l1_geom: CacheGeometry {
                size_bytes: 4096,
                assoc: 4,
            },
            l1_latency: 4,
            l1_mshr_entries: 32,
            l1_mshr_merges: 8,
            l2_geom: CacheGeometry {
                size_bytes: 32768,
                assoc: 8,
            },
            n_l2_banks: 2,
            l2_latency: 20,
            l2_mshr_entries: 16,
            xbar_latency: 4,
            dram_latency: 100,
            dram_bytes_per_cycle: 64.0,
            l2_replacement: crisp_mem::Replacement::Lru,
        }
    }

    fn port() -> SmMemPort {
        SmMemPort::new(0, &mem_cfg())
    }

    fn load_entry(id: u64, sectors: Vec<u64>) -> LsuEntry {
        LsuEntry {
            stream: StreamId(0),
            class: DataClass::Compute,
            space: Space::Global,
            is_load: true,
            sectors,
            next: 0,
            inflight_id: id,
        }
    }

    #[test]
    fn port_budget_limits_sectors_per_cycle() {
        let cfg = SmConfig::default(); // 4 ports
        let mut lsu = Lsu::new(&cfg);
        let mut p = port();
        lsu.push(load_entry(1, (0..8).map(|i| i * 32).collect()));
        let ev = lsu.process(0, 0, &cfg, &mut p);
        assert_eq!(ev.len(), 4, "only 4 sectors in cycle 0");
        assert!(!lsu.is_empty());
        let ev = lsu.process(0, 1, &cfg, &mut p);
        assert_eq!(ev.len(), 4);
        assert!(lsu.is_empty());
        assert_eq!(lsu.sectors_issued(), 8);
    }

    #[test]
    fn shared_memory_resolves_locally() {
        let cfg = SmConfig::default();
        let mut lsu = Lsu::new(&cfg);
        let mut p = port();
        let mut e = load_entry(7, vec![]);
        e.space = Space::Shared;
        lsu.push(e);
        let ev = lsu.process(0, 10, &cfg, &mut p);
        assert_eq!(
            ev,
            vec![LsuEvent::Ready {
                inflight_id: 7,
                ready_at: 10 + cfg.smem_latency
            }]
        );
    }

    #[test]
    fn stores_produce_no_events_but_consume_ports() {
        let cfg = SmConfig::default();
        let mut lsu = Lsu::new(&cfg);
        let mut p = port();
        let mut e = load_entry(3, vec![0, 32]);
        e.is_load = false;
        lsu.push(e);
        let ev = lsu.process(0, 0, &cfg, &mut p);
        assert!(ev.is_empty());
        assert_eq!(lsu.sectors_issued(), 2);
        assert!(lsu.is_empty());
    }

    #[test]
    fn queue_depth_backpressure() {
        let cfg = SmConfig::default();
        let mut lsu = Lsu::new(&cfg);
        for i in 0..cfg.lsu_queue_depth {
            assert!(lsu.has_room());
            lsu.push(load_entry(i as u64, vec![0]));
        }
        assert!(!lsu.has_room());
    }

    #[test]
    fn mshr_stall_retries_same_sector() {
        let cfg = SmConfig {
            l1_ports: 4,
            ..SmConfig::default()
        };
        let mut p = SmMemPort::new(
            0,
            &MemConfig {
                l1_mshr_entries: 1, // only one outstanding sector
                ..mem_cfg()
            },
        );
        let mut lsu = Lsu::new(&cfg);
        // Two sectors in different lines: second allocation must stall.
        lsu.push(load_entry(1, vec![0x0000, 0x4000]));
        let ev = lsu.process(0, 0, &cfg, &mut p);
        assert_eq!(ev.len(), 1, "second sector stalled on MSHR");
        assert!(!lsu.is_empty());
    }
}
