//! The SM core: warp slots, GTO schedulers, CTA lifecycle, writeback.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_mem::{MemConfig, SmMemPort};
use crisp_trace::{DataClass, KernelId, Op, Reg, Space, StreamId, TraceSource, SECTOR_BYTES};

use crate::config::{SchedulerPolicy, SmConfig};
use crate::cta::{CtaResources, CtaWork, ResourceQuota, SmResources};
use crate::lsu::{Lsu, LsuEntry, LsuEvent};
use crate::units::ExecUnits;
use crate::warp::{WarpState, WarpStatus};

/// A committed CTA, reported so the GPU-level scheduler can refill the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaCommit {
    /// Stream the CTA belonged to.
    pub stream: StreamId,
    /// Kernel launch the CTA belonged to — the GPU scheduler releases the
    /// CTA's trace window against this handle.
    pub kernel: KernelId,
    /// The scheduler-assigned sequence number from [`CtaWork::seq`].
    pub seq: u64,
    /// CTA index within its kernel's grid.
    pub cta_index: usize,
}

/// What one SM cycle produced.
#[derive(Debug, Clone, Default)]
pub struct CycleOutput {
    /// CTAs that committed this cycle.
    pub commits: Vec<CtaCommit>,
    /// Warp instructions issued this cycle.
    pub issued: u64,
}

/// Why scheduler issue slots went unused (one count per scheduler-cycle).
///
/// `blocked` is always the sum of the five cause fields; each blocked slot
/// is attributed to the highest-priority cause among the scheduler's
/// resident warps (memory pending > MSHR full > scoreboard > pipe busy >
/// barrier), so a slot waiting on both a DRAM round trip and an ALU hazard
/// reads as a memory stall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Slots that issued an instruction.
    pub issued: u64,
    /// No warps resident on this scheduler's slots.
    pub empty: u64,
    /// Warps resident but all blocked (sum of the cause fields below).
    pub blocked: u64,
    /// Blocked on a scoreboard hazard whose producer is an ALU/SFU op.
    pub scoreboard: u64,
    /// Blocked on a scoreboard hazard whose producer is an outstanding
    /// memory load (DRAM / L2 round trip).
    pub mem_pending: u64,
    /// A memory instruction was ready but the LSU queue (L1 MSHR
    /// backpressure) had no room.
    pub mshr_full: u64,
    /// An ALU/SFU/tensor instruction was ready but every matching exec
    /// pipe was busy.
    pub pipe_busy: u64,
    /// Every live warp was parked at the CTA barrier.
    pub barrier: u64,
}

impl StallBreakdown {
    /// Fraction of scheduler slots that issued, over slots with resident
    /// warps (issue efficiency).
    pub fn issue_efficiency(&self) -> f64 {
        let active = self.issued + self.blocked;
        if active == 0 {
            0.0
        } else {
            self.issued as f64 / active as f64
        }
    }

    /// Accumulate `other` into `self` (aggregating per-SM breakdowns).
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.issued += other.issued;
        self.empty += other.empty;
        self.blocked += other.blocked;
        self.scoreboard += other.scoreboard;
        self.mem_pending += other.mem_pending;
        self.mshr_full += other.mshr_full;
        self.pipe_busy += other.pipe_busy;
        self.barrier += other.barrier;
    }
}

/// Highest-priority reason a blocked scheduler slot could not issue.
/// Variant order is priority order (ascending), so `max` picks the cause
/// to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum StallCause {
    Barrier,
    PipeBusy,
    Scoreboard,
    MshrFull,
    MemPending,
}

#[derive(Debug)]
struct ResidentCta {
    stream: StreamId,
    kernel: KernelId,
    seq: u64,
    cta_index: usize,
    resources: CtaResources,
    warp_slots: Vec<usize>,
    live_warps: usize,
    at_barrier: usize,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    warp_slot: usize,
    reg: Option<Reg>,
    remaining: usize,
}

/// One streaming multiprocessor.
///
/// An `Sm` owns its [`SmMemPort`] (private L1 + MSHRs), so a whole cycle —
/// [`Sm::cycle`] — touches no shared state and may run on any worker
/// thread. The type is `Send` by construction; the parallel executor in
/// `crisp-sim` relies on that to ship SM shards across threads.
#[derive(Debug)]
pub struct Sm {
    id: usize,
    cfg: SmConfig,
    resources: SmResources,
    warps: Vec<Option<WarpState>>,
    ctas: Vec<Option<ResidentCta>>,
    units: ExecUnits,
    lsu: Lsu,
    port: SmMemPort,
    /// ALU result writebacks: (ready_at, warp_slot, reg).
    writebacks: BinaryHeap<Reverse<(u64, usize, u16)>>,
    /// Locally-satisfied memory sectors: (ready_at, inflight_id).
    mem_ready: BinaryHeap<Reverse<(u64, u64)>>,
    inflight: HashMap<u64, Inflight>,
    next_inflight: u64,
    launch_seq: u64,
    /// Greedy pointer per scheduler (GTO's "greedy" half).
    last_issued: Vec<Option<usize>>,
    issued_by_stream: HashMap<StreamId, u64>,
    window_issued: HashMap<StreamId, u64>,
    n_resident_warps: usize,
    stalls: StallBreakdown,
}

// Lend the private port, so `MemSystem::tick_into` can drain/fill SMs
// directly from a `&mut [Sm]` (or `&mut [&mut Sm]`, via std's forwarding
// impl) without the cycle loop building a per-cycle `Vec<&mut SmMemPort>`.
impl AsMut<SmMemPort> for Sm {
    fn as_mut(&mut self) -> &mut SmMemPort {
        &mut self.port
    }
}

impl Sm {
    /// An idle SM with the given id, configuration, and memory port.
    ///
    /// # Panics
    ///
    /// Panics if the port's SM id does not match `id`.
    pub fn new(id: usize, cfg: SmConfig, port: SmMemPort) -> Self {
        assert_eq!(
            port.sm() as usize,
            id,
            "memory port belongs to a different SM"
        );
        Sm {
            id,
            cfg,
            resources: SmResources::new(cfg),
            warps: (0..cfg.max_warps).map(|_| None).collect(),
            ctas: (0..cfg.max_ctas).map(|_| None).collect(),
            units: ExecUnits::new(&cfg),
            lsu: Lsu::new(&cfg),
            port,
            writebacks: BinaryHeap::new(),
            mem_ready: BinaryHeap::new(),
            inflight: HashMap::new(),
            next_inflight: 0,
            launch_seq: 0,
            last_issued: vec![None; cfg.schedulers as usize],
            issued_by_stream: HashMap::new(),
            window_issued: HashMap::new(),
            n_resident_warps: 0,
            stalls: StallBreakdown::default(),
        }
    }

    /// This SM's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &SmConfig {
        &self.cfg
    }

    /// Resource accounting (occupancy queries).
    pub fn resources(&self) -> &SmResources {
        &self.resources
    }

    /// This SM's private memory port (L1 statistics, quiescence).
    pub fn port(&self) -> &SmMemPort {
        &self.port
    }

    /// Mutable access to the memory port — the shared hierarchy drains and
    /// fills it each tick.
    pub fn port_mut(&mut self) -> &mut SmMemPort {
        &mut self.port
    }

    /// Whether a CTA with needs `r` from `stream` can be issued under
    /// `quota`.
    pub fn fits(&self, stream: StreamId, r: CtaResources, quota: ResourceQuota) -> bool {
        self.resources.fits(stream, r, quota)
    }

    /// Launch one CTA. The caller must have checked [`Sm::fits`].
    ///
    /// # Panics
    ///
    /// Panics if warp or CTA slots are unexpectedly exhausted.
    pub fn launch_cta(&mut self, work: CtaWork) {
        let res = work.resources();
        let n_warps = work.cta.warps.len();
        let cta_slot = self
            .ctas
            .iter()
            .position(Option::is_none)
            .expect("no free CTA slot despite fits() check");
        let mut slots = Vec::with_capacity(n_warps);
        for (i, w) in self.warps.iter().enumerate() {
            if w.is_none() {
                slots.push(i);
                if slots.len() == n_warps {
                    break;
                }
            }
        }
        assert_eq!(
            slots.len(),
            n_warps,
            "no free warp slots despite fits() check"
        );
        self.n_resident_warps += n_warps;
        for (wi, &slot) in slots.iter().enumerate() {
            self.warps[slot] = Some(WarpState::new(
                work.info.clone(),
                work.cta.clone(),
                work.kernel,
                work.cta_index,
                wi,
                cta_slot,
                work.stream,
                self.launch_seq,
            ));
            self.launch_seq += 1;
        }
        self.resources.allocate(work.stream, res);
        self.ctas[cta_slot] = Some(ResidentCta {
            stream: work.stream,
            kernel: work.kernel,
            seq: work.seq,
            cta_index: work.cta_index,
            resources: res,
            warp_slots: slots,
            live_warps: n_warps,
            at_barrier: 0,
        });
    }

    /// Route a memory completion (from the shared hierarchy's tick) back to
    /// its load instruction.
    pub fn on_mem_completion(&mut self, inflight_id: u64) {
        let done = match self.inflight.get_mut(&inflight_id) {
            Some(f) => {
                f.remaining -= 1;
                f.remaining == 0
            }
            None => return,
        };
        if done {
            let f = self.inflight.remove(&inflight_id).expect("checked above");
            if let (Some(reg), Some(w)) = (f.reg, self.warps[f.warp_slot].as_mut()) {
                w.clear_pending(reg);
            }
        }
    }

    /// Total warp instructions issued on behalf of `stream`.
    pub fn issued_for(&self, stream: StreamId) -> u64 {
        self.issued_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// Instructions issued for `stream` since the last call (the
    /// warped-slicer sampling window).
    pub fn take_window_issued(&mut self, stream: StreamId) -> u64 {
        self.window_issued.remove(&stream).unwrap_or(0)
    }

    /// Whether any work is resident or in flight.
    pub fn busy(&self) -> bool {
        self.n_resident_warps > 0
            || !self.lsu.is_empty()
            || !self.inflight.is_empty()
            || !self.writebacks.is_empty()
            || !self.mem_ready.is_empty()
            || !self.port.quiescent()
    }

    /// Sectors this SM has presented to the L1 (bandwidth statistic).
    pub fn l1_sectors_issued(&self) -> u64 {
        self.lsu.sectors_issued()
    }

    /// Scheduler-slot accounting since construction.
    /// Point-in-time snapshot of the SM's scheduling and memory-side state,
    /// for deadlock reports. Read-only and deterministic: depends only on
    /// architectural state, so serial and sharded runs of the same trace
    /// snapshot identically at the same cycle.
    pub fn diagnostics(&self) -> crate::diag::SmDiagnostics {
        use crate::diag::{CtaDiagnostics, SmDiagnostics, WarpDiagnostics, WarpStall};
        let mut warps = Vec::new();
        for (slot, w) in self.warps.iter().enumerate() {
            let Some(w) = w.as_ref() else { continue };
            let trace = &w.cta.warps[w.warp_index];
            let stall = match w.status {
                WarpStatus::Exited => WarpStall::Exited,
                WarpStatus::AtBarrier => WarpStall::Barrier,
                WarpStatus::Ready => match w.next_instr() {
                    None => WarpStall::TraceExhausted,
                    Some(instr) if w.scoreboard_blocks(instr) => {
                        if w.blocked_on_mem(instr) {
                            WarpStall::MemPending
                        } else {
                            WarpStall::Scoreboard
                        }
                    }
                    Some(_) => WarpStall::Issuable,
                },
            };
            warps.push(WarpDiagnostics {
                slot,
                stream: w.stream,
                cta_index: w.cta_index,
                warp_index: w.warp_index,
                pc: w.pc,
                trace_len: trace.len(),
                stall,
                pending_regs: (w.pending_writes | w.pending_mem).count_ones(),
            });
        }
        let mut ctas = Vec::new();
        for cta in self.ctas.iter().flatten() {
            let kernel = cta
                .warp_slots
                .first()
                .and_then(|&s| self.warps[s].as_ref())
                .map(|w| w.info.name.clone())
                .unwrap_or_default();
            ctas.push(CtaDiagnostics {
                stream: cta.stream,
                kernel,
                cta_index: cta.cta_index,
                live_warps: cta.live_warps,
                at_barrier: cta.at_barrier,
            });
        }
        SmDiagnostics {
            id: self.id,
            ctas,
            warps,
            mshr_in_flight: self.port.in_flight(),
            lsu_queued: self.lsu.queued(),
            writebacks_pending: self.writebacks.len(),
        }
    }

    pub fn stalls(&self) -> StallBreakdown {
        self.stalls
    }

    /// Advance one cycle. Touches only SM-private state (including the
    /// owned memory port), so distinct SMs may cycle concurrently.
    pub fn cycle(&mut self, now: u64) -> CycleOutput {
        let mut out = CycleOutput::default();

        // 1. Retire ALU writebacks due this cycle.
        while let Some(&Reverse((t, slot, reg))) = self.writebacks.peek() {
            if t > now {
                break;
            }
            self.writebacks.pop();
            if let Some(w) = self.warps[slot].as_mut() {
                w.clear_pending(Reg(reg));
            }
        }

        // 2. Retire locally-satisfied memory sectors.
        while let Some(&Reverse((t, id))) = self.mem_ready.peek() {
            if t > now {
                break;
            }
            self.mem_ready.pop();
            self.on_mem_completion(id);
        }

        // 3. Work the LSU against the private port.
        for ev in self.lsu.process(self.id, now, &self.cfg, &mut self.port) {
            match ev {
                LsuEvent::Ready {
                    inflight_id,
                    ready_at,
                } => {
                    self.mem_ready.push(Reverse((ready_at, inflight_id)));
                }
                LsuEvent::Sent { .. } => {}
            }
        }

        // 4. Each scheduler issues at most one instruction (GTO).
        let n_sched = self.cfg.schedulers as usize;
        for s in 0..n_sched {
            let candidate = self.pick_warp(s, now);
            if let Some(slot) = candidate {
                if self.issue_from(slot, now, &mut out) {
                    self.last_issued[s] = Some(slot);
                    self.stalls.issued += 1;
                } else {
                    self.last_issued[s] = None;
                }
            } else if let Some(cause) = self.classify_stall(s) {
                self.stalls.blocked += 1;
                match cause {
                    StallCause::Barrier => self.stalls.barrier += 1,
                    StallCause::PipeBusy => self.stalls.pipe_busy += 1,
                    StallCause::Scoreboard => self.stalls.scoreboard += 1,
                    StallCause::MshrFull => self.stalls.mshr_full += 1,
                    StallCause::MemPending => self.stalls.mem_pending += 1,
                }
            } else {
                self.stalls.empty += 1;
            }
        }
        out
    }

    /// Attribute scheduler `s`'s failure to issue: the highest-priority
    /// cause over its live resident warps, or `None` when the scheduler has
    /// no live warps at all (an `empty` slot).
    ///
    /// Runs only on blocked slots, where the old accounting already scanned
    /// the scheduler's warps — the cause lookup rides on that same scan.
    fn classify_stall(&self, s: usize) -> Option<StallCause> {
        let n_sched = self.cfg.schedulers as usize;
        let mut cause: Option<StallCause> = None;
        for slot in (s..self.warps.len()).step_by(n_sched) {
            let Some(w) = self.warps[slot].as_ref() else {
                continue;
            };
            let c = match w.status {
                WarpStatus::Exited => continue,
                WarpStatus::AtBarrier => StallCause::Barrier,
                WarpStatus::Ready => {
                    let Some(instr) = w.next_instr() else {
                        continue;
                    };
                    if w.scoreboard_blocks(instr) {
                        if w.blocked_on_mem(instr) {
                            StallCause::MemPending
                        } else {
                            StallCause::Scoreboard
                        }
                    } else {
                        // The warp was ready yet not picked: its structural
                        // resource is exhausted. (Bar/Exit always issue, so
                        // they cannot reach this arm.)
                        match instr.op {
                            Op::Ld(_) | Op::St(_) => StallCause::MshrFull,
                            _ => StallCause::PipeBusy,
                        }
                    }
                }
            };
            cause = Some(cause.map_or(c, |prev| prev.max(c)));
        }
        cause
    }

    /// Warp selection for scheduler `s`, per the configured policy.
    fn pick_warp(&mut self, s: usize, now: u64) -> Option<usize> {
        match self.cfg.scheduler {
            SchedulerPolicy::Gto => self.pick_warp_gto(s, now),
            SchedulerPolicy::Lrr => self.pick_warp_lrr(s, now),
        }
    }

    /// GTO: the greedily-held warp first, else the oldest ready warp owned
    /// by this scheduler.
    fn pick_warp_gto(&mut self, s: usize, now: u64) -> Option<usize> {
        let n_sched = self.cfg.schedulers as usize;
        if let Some(slot) = self.last_issued[s] {
            if self.warp_can_issue(slot, now) {
                return Some(slot);
            }
        }
        let mut best: Option<(u64, usize)> = None;
        for slot in (s..self.warps.len()).step_by(n_sched) {
            if self.warp_can_issue(slot, now) {
                let age = self.warps[slot].as_ref().map(|w| w.age).unwrap_or(u64::MAX);
                if best.is_none_or(|(ba, _)| age < ba) {
                    best = Some((age, slot));
                }
            }
        }
        best.map(|(_, slot)| slot)
    }

    /// LRR: the first ready warp strictly after the last one issued,
    /// wrapping around this scheduler's slots.
    ///
    /// Scheduler `s` owns slots `s, s + n_sched, s + 2*n_sched, …`; the
    /// k-th owned slot is computed arithmetically so the per-cycle hot path
    /// stays allocation-free.
    fn pick_warp_lrr(&mut self, s: usize, now: u64) -> Option<usize> {
        let n_sched = self.cfg.schedulers as usize;
        if s >= self.warps.len() {
            return None;
        }
        let n_slots = (self.warps.len() - s).div_ceil(n_sched);
        let start = match self.last_issued[s] {
            // last = s + p*n_sched → resume from owned index p + 1.
            Some(last) if last >= s => (last - s) / n_sched + 1,
            _ => 0,
        };
        for k in 0..n_slots {
            let slot = s + ((start + k) % n_slots) * n_sched;
            if self.warp_can_issue(slot, now) {
                return Some(slot);
            }
        }
        None
    }

    fn warp_can_issue(&mut self, slot: usize, now: u64) -> bool {
        let Some(w) = self.warps[slot].as_ref() else {
            return false;
        };
        if w.status != WarpStatus::Ready {
            return false;
        }
        let Some(instr) = w.next_instr() else {
            return false;
        };
        if w.scoreboard_blocks(instr) {
            return false;
        }
        match instr.op {
            Op::Ld(_) | Op::St(_) => self.lsu.has_room(),
            // Unit availability is only *checked* here; reservation happens
            // at issue. busy_count == units means nothing free.
            op => {
                (self.units.busy_count(op, now) as u32) < self.cfg.units_for(op)
                    || matches!(op, Op::Bar | Op::Exit)
            }
        }
    }

    /// Issue the next instruction of the warp in `slot`. Returns whether an
    /// instruction was actually issued.
    fn issue_from(&mut self, slot: usize, now: u64, out: &mut CycleOutput) -> bool {
        let (op, dst, mem_access, stream) = {
            let w = self.warps[slot].as_ref().expect("picked warp exists");
            let i = w.next_instr().expect("picked warp has an instruction");
            (i.op, i.dst, i.mem.clone(), w.stream)
        };
        match op {
            Op::Bar => {
                self.issue_barrier(slot);
            }
            Op::Exit => {
                self.issue_exit(slot, out);
            }
            Op::Ld(space) | Op::St(space) => {
                let is_load = matches!(op, Op::Ld(_));
                let access = mem_access.expect("memory op carries an access");
                let sectors: Vec<u64> = if space == Space::Shared {
                    Vec::new()
                } else {
                    access
                        .distinct_chunks(SECTOR_BYTES)
                        .into_iter()
                        .map(|c| c * SECTOR_BYTES)
                        .collect()
                };
                let id = self.next_inflight;
                self.next_inflight += 1;
                if is_load {
                    let remaining = if space == Space::Shared {
                        1
                    } else {
                        sectors.len()
                    };
                    self.inflight.insert(
                        id,
                        Inflight {
                            warp_slot: slot,
                            reg: dst,
                            remaining,
                        },
                    );
                    if let (Some(d), Some(w)) = (dst, self.warps[slot].as_mut()) {
                        w.set_pending_mem(d);
                    }
                }
                let class = if space == Space::Tex {
                    DataClass::Texture
                } else {
                    access.class
                };
                self.lsu.push(LsuEntry {
                    stream,
                    class,
                    space,
                    is_load,
                    sectors,
                    next: 0,
                    inflight_id: id,
                });
                if let Some(w) = self.warps[slot].as_mut() {
                    w.advance();
                }
            }
            op => {
                // ALU / SFU / tensor / branch: reserve the pipe.
                let ok = self.units.try_issue(op, now, &self.cfg);
                debug_assert!(ok, "warp_can_issue checked unit availability");
                let (lat, _ii) = self.cfg.timing(op);
                if let Some(w) = self.warps[slot].as_mut() {
                    if let Some(d) = dst {
                        w.set_pending(d);
                        self.writebacks.push(Reverse((now + lat, slot, d.0)));
                    }
                    w.advance();
                }
            }
        }
        out.issued += 1;
        *self.issued_by_stream.entry(stream).or_insert(0) += 1;
        *self.window_issued.entry(stream).or_insert(0) += 1;
        true
    }

    fn issue_barrier(&mut self, slot: usize) {
        let cta_slot = {
            let w = self.warps[slot].as_mut().expect("warp exists");
            w.advance(); // resume *after* the barrier once released
            w.status = WarpStatus::AtBarrier;
            w.cta_slot
        };
        let release = {
            let cta = self.ctas[cta_slot].as_mut().expect("warp belongs to a CTA");
            cta.at_barrier += 1;
            cta.at_barrier >= cta.live_warps
        };
        if release {
            self.release_barrier(cta_slot);
        }
    }

    fn release_barrier(&mut self, cta_slot: usize) {
        let slots = self.ctas[cta_slot]
            .as_ref()
            .expect("cta exists")
            .warp_slots
            .clone();
        for s in slots {
            if let Some(w) = self.warps[s].as_mut() {
                if w.status == WarpStatus::AtBarrier {
                    w.status = WarpStatus::Ready;
                }
            }
        }
        if let Some(cta) = self.ctas[cta_slot].as_mut() {
            cta.at_barrier = 0;
        }
    }

    fn issue_exit(&mut self, slot: usize, out: &mut CycleOutput) {
        let cta_slot = {
            let w = self.warps[slot].as_mut().expect("warp exists");
            w.status = WarpStatus::Exited;
            w.advance();
            w.cta_slot
        };
        let (committed, release_bar) = {
            let cta = self.ctas[cta_slot].as_mut().expect("warp belongs to a CTA");
            cta.live_warps -= 1;
            let committed = cta.live_warps == 0;
            let release_bar = !committed && cta.at_barrier >= cta.live_warps;
            (committed, release_bar)
        };
        if release_bar {
            self.release_barrier(cta_slot);
        }
        if committed {
            let cta = self.ctas[cta_slot].take().expect("committing CTA exists");
            for s in &cta.warp_slots {
                self.warps[*s] = None;
            }
            self.n_resident_warps -= cta.warp_slots.len();
            self.resources.release(cta.stream, cta.resources);
            out.commits.push(CtaCommit {
                stream: cta.stream,
                kernel: cta.kernel,
                seq: cta.seq,
                cta_index: cta.cta_index,
            });
        }
    }
}

impl CheckpointState for StallBreakdown {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.issued)?;
        w.u64(self.empty)?;
        w.u64(self.blocked)?;
        w.u64(self.scoreboard)?;
        w.u64(self.mem_pending)?;
        w.u64(self.mshr_full)?;
        w.u64(self.pipe_busy)?;
        w.u64(self.barrier)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(StallBreakdown {
            issued: r.u64()?,
            empty: r.u64()?,
            blocked: r.u64()?,
            scoreboard: r.u64()?,
            mem_pending: r.u64()?,
            mshr_full: r.u64()?,
            pipe_busy: r.u64()?,
            barrier: r.u64()?,
        })
    }
}

impl CheckpointState for ResidentCta {
    type SaveCtx<'a> = ();
    /// Warp-slot bound (`cfg.max_warps`) for index validation.
    type RestoreCtx<'a> = usize;

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.stream(self.stream)?;
        w.u32(self.kernel.0)?;
        w.u64(self.seq)?;
        w.u64(self.cta_index as u64)?;
        self.resources.save(w, ())?;
        w.len(self.warp_slots.len())?;
        for &s in &self.warp_slots {
            w.u64(s as u64)?;
        }
        w.u64(self.live_warps as u64)?;
        w.u64(self.at_barrier as u64)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, max_warps: usize) -> io::Result<Self> {
        let stream = r.stream()?;
        let kernel = KernelId(r.u32()?);
        let seq = r.u64()?;
        let cta_index = r.u64()? as usize;
        let resources = CtaResources::restore(r, ())?;
        let n = r.len(max_warps)?;
        let mut warp_slots = Vec::with_capacity(n);
        for _ in 0..n {
            let s = r.u64()? as usize;
            if s >= max_warps {
                return Err(bad(format!("cta warp slot {s} >= {max_warps}")));
            }
            warp_slots.push(s);
        }
        let live_warps = r.u64()? as usize;
        let at_barrier = r.u64()? as usize;
        if live_warps > warp_slots.len() || at_barrier > warp_slots.len() {
            return Err(bad("cta warp counts exceed its slot list"));
        }
        Ok(ResidentCta {
            stream,
            kernel,
            seq,
            cta_index,
            resources,
            warp_slots,
            live_warps,
            at_barrier,
        })
    }
}

impl CheckpointState for Sm {
    type SaveCtx<'a> = ();
    /// `(sm id, core config, hierarchy config, trace source)` — everything
    /// outside the serialized state needed to rebuild the SM. Resident
    /// warps page their CTAs back in through the source.
    type RestoreCtx<'a> = (usize, SmConfig, &'a MemConfig, &'a mut TraceSource);

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.id as u64)?;
        self.resources.save(w, ())?;
        w.len(self.warps.len())?;
        for warp in &self.warps {
            w.option(warp.as_ref(), |w, ws| ws.save(w, ()))?;
        }
        w.len(self.ctas.len())?;
        for cta in &self.ctas {
            w.option(cta.as_ref(), |w, c| c.save(w, ()))?;
        }
        self.units.save(w, ())?;
        self.lsu.save(w, ())?;
        self.port.save(w, ())?;
        // Heap contents serialized sorted for a deterministic byte stream;
        // sorted push-rebuild pops identically.
        let mut wbs: Vec<(u64, usize, u16)> = self.writebacks.iter().map(|Reverse(x)| *x).collect();
        wbs.sort_unstable();
        w.len(wbs.len())?;
        for (t, slot, reg) in wbs {
            w.u64(t)?;
            w.u64(slot as u64)?;
            w.u16(reg)?;
        }
        let mut ready: Vec<(u64, u64)> = self.mem_ready.iter().map(|Reverse(x)| *x).collect();
        ready.sort_unstable();
        w.len(ready.len())?;
        for (t, id) in ready {
            w.u64(t)?;
            w.u64(id)?;
        }
        let mut ids: Vec<u64> = self.inflight.keys().copied().collect();
        ids.sort_unstable();
        w.len(ids.len())?;
        for id in ids {
            let f = &self.inflight[&id];
            w.u64(id)?;
            w.u64(f.warp_slot as u64)?;
            w.option(f.reg.as_ref(), |w, r| w.u16(r.0))?;
            w.u64(f.remaining as u64)?;
        }
        w.u64(self.next_inflight)?;
        w.u64(self.launch_seq)?;
        w.len(self.last_issued.len())?;
        for slot in &self.last_issued {
            w.option(slot.as_ref(), |w, &s| w.u64(s as u64))?;
        }
        for counters in [&self.issued_by_stream, &self.window_issued] {
            let mut streams: Vec<StreamId> = counters.keys().copied().collect();
            streams.sort_unstable();
            w.len(streams.len())?;
            for s in streams {
                w.stream(s)?;
                w.u64(counters[&s])?;
            }
        }
        self.stalls.save(w, ())
    }

    fn restore<R: io::Read>(
        r: &mut Reader<R>,
        (id, cfg, mem_cfg, source): (usize, SmConfig, &MemConfig, &mut TraceSource),
    ) -> io::Result<Self> {
        let found = r.u64()? as usize;
        if found != id {
            return Err(bad(format!("checkpoint SM id {found}, expected {id}")));
        }
        let resources = SmResources::restore(r, cfg)?;
        let max_warps = cfg.max_warps as usize;
        let n = r.len(max_warps)?;
        if n != max_warps {
            return Err(bad(format!(
                "SM has {n} warp slots, config implies {max_warps}"
            )));
        }
        let mut warps = Vec::with_capacity(n);
        let mut n_resident_warps = 0;
        for _ in 0..n {
            let warp = r.option(|r| WarpState::restore(r, &mut *source))?;
            if let Some(w) = &warp {
                if w.cta_slot >= cfg.max_ctas as usize {
                    return Err(bad(format!("warp cta slot {} out of range", w.cta_slot)));
                }
                n_resident_warps += 1;
            }
            warps.push(warp);
        }
        let max_ctas = cfg.max_ctas as usize;
        let n = r.len(max_ctas)?;
        if n != max_ctas {
            return Err(bad(format!(
                "SM has {n} CTA slots, config implies {max_ctas}"
            )));
        }
        let mut ctas = Vec::with_capacity(n);
        for _ in 0..n {
            let cta = r.option(|r| ResidentCta::restore(r, max_warps))?;
            if let Some(c) = &cta {
                if c.kernel.0 as usize >= source.n_kernels() {
                    return Err(bad(format!("resident CTA references unknown {}", c.kernel)));
                }
            }
            ctas.push(cta);
        }
        let units = ExecUnits::restore(r, &cfg)?;
        let lsu = Lsu::restore(r, &cfg)?;
        let port = SmMemPort::restore(r, (id as u16, mem_cfg))?;
        let n = r.len(1 << 24)?;
        let mut writebacks = BinaryHeap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let t = r.u64()?;
            let slot = r.u64()? as usize;
            if slot >= max_warps {
                return Err(bad(format!("writeback warp slot {slot} out of range")));
            }
            let reg = r.u16()?;
            if reg >= 128 {
                return Err(bad(format!("writeback register {reg} out of range")));
            }
            writebacks.push(Reverse((t, slot, reg)));
        }
        let n = r.len(1 << 24)?;
        let mut mem_ready = BinaryHeap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let t = r.u64()?;
            let id = r.u64()?;
            mem_ready.push(Reverse((t, id)));
        }
        let n = r.len(1 << 24)?;
        let mut inflight = HashMap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let fid = r.u64()?;
            let warp_slot = r.u64()? as usize;
            if warp_slot >= max_warps {
                return Err(bad(format!("inflight warp slot {warp_slot} out of range")));
            }
            let reg = r.option(|r| r.u16())?;
            if reg.is_some_and(|x| x >= 128) {
                return Err(bad("inflight register out of range"));
            }
            let remaining = r.u64()? as usize;
            if inflight
                .insert(
                    fid,
                    Inflight {
                        warp_slot,
                        reg: reg.map(Reg),
                        remaining,
                    },
                )
                .is_some()
            {
                return Err(bad("duplicate inflight id"));
            }
        }
        let next_inflight = r.u64()?;
        let launch_seq = r.u64()?;
        let n_sched = cfg.schedulers as usize;
        let n = r.len(n_sched)?;
        if n != n_sched {
            return Err(bad(format!(
                "SM has {n} scheduler pointers, config implies {n_sched}"
            )));
        }
        let mut last_issued = Vec::with_capacity(n);
        for _ in 0..n {
            let slot = r.option(|r| r.u64())?.map(|s| s as usize);
            if slot.is_some_and(|s| s >= max_warps) {
                return Err(bad("scheduler pointer out of range"));
            }
            last_issued.push(slot);
        }
        let mut counters = [HashMap::new(), HashMap::new()];
        for map in &mut counters {
            let n = r.len(1 << 16)?;
            for _ in 0..n {
                let s = r.stream()?;
                let v = r.u64()?;
                map.insert(s, v);
            }
        }
        let [issued_by_stream, window_issued] = counters;
        Ok(Sm {
            id,
            cfg,
            resources,
            warps,
            ctas,
            units,
            lsu,
            port,
            writebacks,
            mem_ready,
            inflight,
            next_inflight,
            launch_seq,
            last_issued,
            issued_by_stream,
            window_issued,
            n_resident_warps,
            stalls: StallBreakdown::restore(r, ())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_mem::{CacheGeometry, MemConfig, MemSystem};
    use crisp_trace::{CtaTrace, Instr, KernelTrace, MemAccess, WarpTrace};
    use std::sync::Arc;

    fn mem_cfg() -> MemConfig {
        MemConfig {
            n_sms: 1,
            l1_geom: CacheGeometry {
                size_bytes: 16384,
                assoc: 4,
            },
            l1_latency: 4,
            l1_mshr_entries: 32,
            l1_mshr_merges: 8,
            l2_geom: CacheGeometry {
                size_bytes: 65536,
                assoc: 8,
            },
            n_l2_banks: 2,
            l2_latency: 20,
            l2_mshr_entries: 32,
            xbar_latency: 4,
            dram_latency: 100,
            dram_bytes_per_cycle: 64.0,
            l2_replacement: crisp_mem::Replacement::Lru,
        }
    }

    fn mem() -> MemSystem {
        MemSystem::new(mem_cfg())
    }

    fn new_sm(cfg: SmConfig) -> Sm {
        Sm::new(0, cfg, SmMemPort::new(0, &mem_cfg()))
    }

    fn run_to_completion(sm: &mut Sm, mem: &mut MemSystem, budget: u64) -> (Vec<CtaCommit>, u64) {
        let mut commits = Vec::new();
        let mut cycles = 0;
        for now in 0..budget {
            let out = sm.cycle(now);
            commits.extend(out.commits);
            let completions = {
                let mut ports = [sm.port_mut()];
                mem.tick(now, &mut ports)
            };
            for c in completions {
                sm.on_mem_completion(c.token.id);
            }
            cycles = now + 1;
            if !sm.busy() && mem.quiescent() {
                break;
            }
        }
        (commits, cycles)
    }

    fn launch(sm: &mut Sm, k: &Arc<KernelTrace>, cta_index: usize, seq: u64) {
        let work = CtaWork {
            stream: StreamId(0),
            kernel: crisp_trace::KernelId(0),
            info: Arc::new(crisp_trace::KernelInfo::of(k)),
            cta: Arc::new(k.ctas[cta_index].clone()),
            cta_index,
            seq,
        };
        assert!(sm.fits(StreamId(0), work.resources(), ResourceQuota::unlimited()));
        sm.launch_cta(work);
    }

    fn alu_kernel(n_instr: usize, n_warps: usize, n_ctas: usize) -> Arc<KernelTrace> {
        let mut w = WarpTrace::new();
        for i in 0..n_instr {
            // Independent FMAs (distinct dsts) to expose ILP.
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) as u16 + 1), &[]));
        }
        w.seal();
        let cta = CtaTrace::new(vec![w; n_warps]);
        Arc::new(KernelTrace::new(
            "alu",
            32 * n_warps as u32,
            16,
            0,
            vec![cta; n_ctas],
        ))
    }

    #[test]
    fn single_warp_alu_kernel_completes() {
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        let k = alu_kernel(10, 1, 1);
        launch(&mut sm, &k, 0, 0);
        let (commits, cycles) = run_to_completion(&mut sm, &mut m, 1000);
        assert_eq!(commits.len(), 1);
        assert_eq!(
            commits[0],
            CtaCommit {
                stream: StreamId(0),
                kernel: crisp_trace::KernelId(0),
                seq: 0,
                cta_index: 0
            }
        );
        assert!(!sm.busy());
        assert!(
            cycles >= 11,
            "10 FMAs + exit takes at least 11 cycles, got {cycles}"
        );
        assert_eq!(sm.issued_for(StreamId(0)), 11);
    }

    #[test]
    fn dependent_chain_serialises_on_latency() {
        // r1 = f(r1) chained: each FMA waits the full 4-cycle latency.
        let mut w = WarpTrace::new();
        for _ in 0..10 {
            w.push(Instr::alu(Op::FpFma, Reg(1), &[Reg(1)]));
        }
        w.seal();
        let k = Arc::new(KernelTrace::new(
            "dep",
            32,
            16,
            0,
            vec![CtaTrace::new(vec![w])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let (_, cycles) = run_to_completion(&mut sm, &mut m, 1000);
        assert!(
            cycles >= 40,
            "10 dependent FMAs × 4-cycle latency, got {cycles}"
        );
    }

    #[test]
    fn multiple_warps_hide_dependency_latency() {
        // 8 warps of dependent chains overlap; total time far less than 8×.
        let mut w = WarpTrace::new();
        for _ in 0..10 {
            w.push(Instr::alu(Op::FpFma, Reg(1), &[Reg(1)]));
        }
        w.seal();
        let cta = CtaTrace::new(vec![w; 8]);
        let k = Arc::new(KernelTrace::new("dep8", 256, 16, 0, vec![cta]));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let (_, cycles) = run_to_completion(&mut sm, &mut m, 10_000);
        assert!(cycles < 8 * 40, "TLP must hide ALU latency, got {cycles}");
    }

    #[test]
    fn load_roundtrip_clears_scoreboard() {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x1000, 32),
        ));
        w.push(Instr::alu(Op::FpFma, Reg(2), &[Reg(1)])); // depends on the load
        w.seal();
        let k = Arc::new(KernelTrace::new(
            "ld",
            32,
            16,
            0,
            vec![CtaTrace::new(vec![w])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let (commits, cycles) = run_to_completion(&mut sm, &mut m, 10_000);
        assert_eq!(commits.len(), 1);
        // Must include the DRAM round trip (~130+ cycles).
        assert!(
            cycles > 100,
            "dependent FMA must wait for DRAM, got {cycles}"
        );
    }

    #[test]
    fn barrier_synchronises_warps() {
        // Warp 0 does long SFU work before the barrier; warp 1 reaches it
        // immediately. Both must pass the barrier together.
        let mut w0 = WarpTrace::new();
        for i in 0..16 {
            w0.push(Instr::alu(Op::Sfu, Reg(i + 1), &[]));
        }
        w0.push(Instr::bar());
        w0.push(Instr::alu(Op::IntAlu, Reg(20), &[]));
        w0.seal();
        let mut w1 = WarpTrace::new();
        w1.push(Instr::bar());
        w1.push(Instr::alu(Op::IntAlu, Reg(20), &[]));
        w1.seal();
        let k = Arc::new(KernelTrace::new(
            "bar",
            64,
            16,
            0,
            vec![CtaTrace::new(vec![w0, w1])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let (commits, _) = run_to_completion(&mut sm, &mut m, 10_000);
        assert_eq!(commits.len(), 1, "barrier must not deadlock");
    }

    #[test]
    fn exit_releases_barrier_waiters() {
        // Warp 1 exits without reaching the barrier; warp 0 waits at it.
        // The CTA must still complete (live-warp count shrinks).
        let mut w0 = WarpTrace::new();
        w0.push(Instr::bar());
        w0.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
        w0.seal();
        let mut w1 = WarpTrace::new();
        for i in 0..8 {
            w1.push(Instr::alu(Op::Sfu, Reg(i + 1), &[]));
        }
        w1.seal(); // exits immediately after ALU work, never hits a bar
        let k = Arc::new(KernelTrace::new(
            "exitbar",
            64,
            16,
            0,
            vec![CtaTrace::new(vec![w0, w1])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let (commits, _) = run_to_completion(&mut sm, &mut m, 10_000);
        assert_eq!(commits.len(), 1, "exit must release barrier waiters");
    }

    #[test]
    fn commits_free_resources_for_refill() {
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        let k = alu_kernel(4, 4, 2);
        launch(&mut sm, &k, 0, 0);
        let before = sm.resources().total().warps;
        assert_eq!(before, 4);
        let (commits, _) = run_to_completion(&mut sm, &mut m, 10_000);
        assert_eq!(commits.len(), 1);
        assert_eq!(
            sm.resources().total().warps,
            0,
            "commit releases warp slots"
        );
        launch(&mut sm, &k, 1, 1);
        let (commits, _) = run_to_completion(&mut sm, &mut m, 10_000);
        assert_eq!(commits.len(), 1);
    }

    #[test]
    fn stall_breakdown_accounts_every_scheduler_slot() {
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        // A dependent FMA chain: mostly blocked cycles.
        let mut w = WarpTrace::new();
        for _ in 0..10 {
            w.push(Instr::alu(Op::FpFma, Reg(1), &[Reg(1)]));
        }
        w.seal();
        let k = Arc::new(KernelTrace::new(
            "dep",
            32,
            16,
            0,
            vec![CtaTrace::new(vec![w])],
        ));
        launch(&mut sm, &k, 0, 0);
        let (_, cycles) = run_to_completion(&mut sm, &mut m, 10_000);
        let st = sm.stalls();
        assert_eq!(st.issued, 11, "10 FMAs + exit");
        assert!(st.blocked > st.issued, "dependent chain is mostly blocked");
        assert!(st.issue_efficiency() < 0.5);
        // Every scheduler slot of every cycle is accounted for.
        assert_eq!(
            st.issued + st.blocked + st.empty,
            cycles * SmConfig::default().schedulers as u64
        );
        // And every blocked slot carries exactly one cause.
        assert_eq!(
            st.blocked,
            st.scoreboard + st.mem_pending + st.mshr_full + st.pipe_busy + st.barrier
        );
        assert!(
            st.scoreboard > 0,
            "an ALU dependency chain stalls on the scoreboard"
        );
        assert_eq!(st.mem_pending, 0, "no memory instructions in this kernel");
    }

    #[test]
    fn load_dependency_stalls_attribute_to_memory() {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x1000, 32),
        ));
        w.push(Instr::alu(Op::FpFma, Reg(2), &[Reg(1)]));
        w.seal();
        let k = Arc::new(KernelTrace::new(
            "ldchain",
            32,
            16,
            0,
            vec![CtaTrace::new(vec![w])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let _ = run_to_completion(&mut sm, &mut m, 10_000);
        let st = sm.stalls();
        assert!(
            st.mem_pending > 50,
            "the DRAM round trip dominates the wait: {st:?}"
        );
        assert!(
            st.mem_pending > st.scoreboard,
            "memory wait must not be misfiled as an ALU hazard: {st:?}"
        );
    }

    #[test]
    fn barrier_waits_attribute_to_barrier() {
        // Warp 1 parks at the barrier while warp 0 (a different scheduler)
        // grinds through SFU work.
        let mut w0 = WarpTrace::new();
        for i in 0..16 {
            w0.push(Instr::alu(Op::Sfu, Reg(i + 1), &[Reg(i + 1)]));
        }
        w0.push(Instr::bar());
        w0.seal();
        let mut w1 = WarpTrace::new();
        w1.push(Instr::bar());
        w1.seal();
        let k = Arc::new(KernelTrace::new(
            "barwait",
            64,
            16,
            0,
            vec![CtaTrace::new(vec![w0, w1])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let _ = run_to_completion(&mut sm, &mut m, 10_000);
        let st = sm.stalls();
        assert!(st.barrier > 0, "warp 1 waited at the barrier: {st:?}");
    }

    #[test]
    fn stall_breakdowns_merge() {
        let mut a = StallBreakdown {
            issued: 1,
            empty: 2,
            blocked: 3,
            scoreboard: 1,
            mem_pending: 1,
            mshr_full: 1,
            pipe_busy: 0,
            barrier: 0,
        };
        let b = StallBreakdown {
            issued: 10,
            empty: 0,
            blocked: 2,
            scoreboard: 0,
            mem_pending: 0,
            mshr_full: 0,
            pipe_busy: 1,
            barrier: 1,
        };
        a.merge(&b);
        assert_eq!(a.issued, 11);
        assert_eq!(a.blocked, 5);
        assert_eq!(
            a.blocked,
            a.scoreboard + a.mem_pending + a.mshr_full + a.pipe_busy + a.barrier
        );
    }

    #[test]
    fn per_stream_issue_counters() {
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        let k = alu_kernel(5, 1, 1);
        launch(&mut sm, &k, 0, 0);
        let _ = run_to_completion(&mut sm, &mut m, 1000);
        assert_eq!(sm.issued_for(StreamId(0)), 6);
        assert_eq!(sm.take_window_issued(StreamId(0)), 6);
        assert_eq!(sm.take_window_issued(StreamId(0)), 0, "window resets");
    }

    #[test]
    fn lrr_scheduler_completes_and_interleaves() {
        let cfg = SmConfig {
            scheduler: crate::config::SchedulerPolicy::Lrr,
            ..SmConfig::default()
        };
        let mut sm = new_sm(cfg);
        let mut m = mem();
        let k = alu_kernel(50, 4, 1);
        launch(&mut sm, &k, 0, 0);
        let (commits, cycles) = run_to_completion(&mut sm, &mut m, 10_000);
        assert_eq!(commits.len(), 1);
        // Same work under GTO for comparison: both must complete; LRR
        // interleaving may differ in cycles but not by orders of magnitude.
        let mut sm2 = new_sm(SmConfig::default());
        let mut m2 = mem();
        launch(&mut sm2, &k, 0, 0);
        let (_, gto_cycles) = run_to_completion(&mut sm2, &mut m2, 10_000);
        assert!((cycles as f64) < gto_cycles as f64 * 3.0);
        assert!((gto_cycles as f64) < cycles as f64 * 3.0);
    }

    #[test]
    fn partial_warps_execute_correctly() {
        // A warp whose memory access has only 5 active lanes (a tail
        // fragment warp) must coalesce and complete like any other.
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess::scattered(
                Space::Global,
                DataClass::Compute,
                4,
                vec![0x100, 0x104, 0x108, 0x10C, 0x2000],
            ),
        ));
        w.push(Instr::alu(Op::FpFma, Reg(2), &[Reg(1)]));
        w.seal();
        let k = Arc::new(KernelTrace::new(
            "tail",
            32,
            16,
            0,
            vec![CtaTrace::new(vec![w])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let (commits, _) = run_to_completion(&mut sm, &mut m, 10_000);
        assert_eq!(commits.len(), 1);
        // 5 lanes over 2 distinct sectors: exactly 2 L1 accesses.
        assert_eq!(sm.port().stats().total().accesses, 2);
    }

    #[test]
    fn texture_loads_are_classified_as_texture() {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Tex, DataClass::Texture, 4, 0x2000, 32),
        ));
        w.seal();
        let k = Arc::new(KernelTrace::new(
            "tex",
            32,
            16,
            0,
            vec![CtaTrace::new(vec![w])],
        ));
        let mut sm = new_sm(SmConfig::default());
        let mut m = mem();
        launch(&mut sm, &k, 0, 0);
        let _ = run_to_completion(&mut sm, &mut m, 10_000);
        let tex = sm.port().stats().get(StreamId(0), DataClass::Texture);
        assert!(
            tex.accesses > 0,
            "texture accesses must be tagged at the L1"
        );
    }
}
