//! Execution-unit pipeline groups.
//!
//! Each opcode class maps to a group of identical pipelines. A pipeline
//! accepts one warp instruction per initiation interval; the instruction's
//! result writes back `latency` cycles later. Contention on these groups is
//! what the warped-slicer case study surfaces ("running concurrently with
//! the graphics workload causes FP bottlenecks" for HOLO).

use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::Op;

use crate::config::SmConfig;

/// Per-class pipeline availability for one SM.
#[derive(Debug, Clone)]
pub struct ExecUnits {
    fp: Vec<u64>,
    int: Vec<u64>,
    sfu: Vec<u64>,
    tensor: Vec<u64>,
}

impl ExecUnits {
    /// Pipelines per the SM configuration, all idle.
    pub fn new(cfg: &SmConfig) -> Self {
        ExecUnits {
            fp: vec![0; cfg.fp_units as usize],
            int: vec![0; cfg.int_units as usize],
            sfu: vec![0; cfg.sfu_units as usize],
            tensor: vec![0; cfg.tensor_units as usize],
        }
    }

    fn group_mut(&mut self, op: Op) -> Option<&mut Vec<u64>> {
        match op {
            Op::IntAlu | Op::Branch => Some(&mut self.int),
            Op::FpAlu | Op::FpMul | Op::FpFma => Some(&mut self.fp),
            Op::Sfu => Some(&mut self.sfu),
            Op::Tensor => Some(&mut self.tensor),
            _ => None,
        }
    }

    /// Try to start `op` at cycle `now`; returns `false` if every pipeline
    /// in the class is still within its initiation interval. Opcodes without
    /// a pipeline group (memory, barrier, exit) always succeed.
    pub fn try_issue(&mut self, op: Op, now: u64, cfg: &SmConfig) -> bool {
        let (_lat, ii) = cfg.timing(op);
        match self.group_mut(op) {
            None => true,
            Some(group) => match group.iter_mut().find(|next_free| **next_free <= now) {
                Some(next_free) => {
                    *next_free = now + ii;
                    true
                }
                None => false,
            },
        }
    }

    /// Number of busy pipelines in `op`'s class at `now` (0 for classes
    /// without pipelines).
    pub fn busy_count(&self, op: Op, now: u64) -> usize {
        let group = match op {
            Op::IntAlu | Op::Branch => &self.int,
            Op::FpAlu | Op::FpMul | Op::FpFma => &self.fp,
            Op::Sfu => &self.sfu,
            Op::Tensor => &self.tensor,
            _ => return 0,
        };
        group.iter().filter(|&&t| t > now).count()
    }
}

impl CheckpointState for ExecUnits {
    type SaveCtx<'a> = ();
    /// The SM configuration, which fixes the pipeline counts.
    type RestoreCtx<'a> = &'a SmConfig;

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        for group in [&self.fp, &self.int, &self.sfu, &self.tensor] {
            w.len(group.len())?;
            for &next_free in group {
                w.u64(next_free)?;
            }
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, cfg: &SmConfig) -> io::Result<Self> {
        let mut read_group = |expected: u32| -> io::Result<Vec<u64>> {
            let n = r.len(expected as usize)?;
            if n != expected as usize {
                return Err(bad(format!(
                    "exec-unit group has {n} pipes, config implies {expected}"
                )));
            }
            (0..n).map(|_| r.u64()).collect()
        };
        Ok(ExecUnits {
            fp: read_group(cfg.fp_units)?,
            int: read_group(cfg.int_units)?,
            sfu: read_group(cfg.sfu_units)?,
            tensor: read_group(cfg.tensor_units)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_group_saturates_at_unit_count() {
        let cfg = SmConfig::default();
        let mut u = ExecUnits::new(&cfg);
        for _ in 0..cfg.fp_units {
            assert!(u.try_issue(Op::FpFma, 0, &cfg));
        }
        assert!(
            !u.try_issue(Op::FpFma, 0, &cfg),
            "all 4 FP pipes taken this cycle"
        );
        assert!(
            u.try_issue(Op::FpFma, 1, &cfg),
            "II=1 frees them next cycle"
        );
    }

    #[test]
    fn sfu_initiation_interval_blocks_longer() {
        let cfg = SmConfig::default();
        let mut u = ExecUnits::new(&cfg);
        for _ in 0..cfg.sfu_units {
            assert!(u.try_issue(Op::Sfu, 0, &cfg));
        }
        assert!(!u.try_issue(Op::Sfu, 3, &cfg), "II=4 still busy at cycle 3");
        assert!(u.try_issue(Op::Sfu, 4, &cfg));
    }

    #[test]
    fn classes_do_not_interfere() {
        let cfg = SmConfig::default();
        let mut u = ExecUnits::new(&cfg);
        for _ in 0..cfg.fp_units {
            let _ = u.try_issue(Op::FpFma, 0, &cfg);
        }
        assert!(
            u.try_issue(Op::IntAlu, 0, &cfg),
            "INT pipes unaffected by FP pressure"
        );
        assert!(u.try_issue(Op::Tensor, 0, &cfg));
    }

    #[test]
    fn memory_and_control_never_block_on_units() {
        let cfg = SmConfig::default();
        let mut u = ExecUnits::new(&cfg);
        for _ in 0..100 {
            assert!(u.try_issue(Op::Ld(crisp_trace::Space::Global), 0, &cfg));
            assert!(u.try_issue(Op::Bar, 0, &cfg));
        }
    }

    #[test]
    fn busy_count_reflects_in_flight_iis() {
        let cfg = SmConfig::default();
        let mut u = ExecUnits::new(&cfg);
        let _ = u.try_issue(Op::Sfu, 10, &cfg);
        let _ = u.try_issue(Op::Sfu, 10, &cfg);
        assert_eq!(u.busy_count(Op::Sfu, 10), 2);
        assert_eq!(u.busy_count(Op::Sfu, 14), 0);
    }
}
