//! Per-warp execution state: trace cursor, scoreboard, blocking status.

use std::io;
use std::sync::Arc;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::{CtaTrace, Instr, KernelId, KernelInfo, Reg, StreamId, TraceSource};

/// Why a warp cannot issue right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpStatus {
    /// Ready to issue its next instruction (subject to unit availability).
    Ready,
    /// Waiting on the CTA barrier.
    AtBarrier,
    /// Trace exhausted; warp has exited.
    Exited,
}

/// Invariant: register ids stay below [`crisp_trace::SCOREBOARD_REGS`]
/// (the scoreboard is a `u128` mask). The pre-flight validator
/// (`crisp_trace::validate_bundle`) rejects traces that violate this before
/// they reach the cycle path; the assert is kept as defense-in-depth because
/// a masked release-mode shift (`1u128 << (r.0 & 127)`) would silently alias
/// two registers and corrupt dependency tracking instead of failing loudly.
fn reg_bit(r: Reg) -> u128 {
    assert!(
        r.0 < crisp_trace::SCOREBOARD_REGS,
        "scoreboard supports register ids 0..{}, got {} — run \
         crisp_trace::validate_bundle on the trace before simulating",
        crisp_trace::SCOREBOARD_REGS,
        r.0
    );
    1u128 << r.0
}

/// One resident warp.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// Launch geometry of the kernel this warp replays.
    pub info: Arc<KernelInfo>,
    /// The instruction streams of this warp's CTA (shared with the trace
    /// source's resident window).
    pub cta: Arc<CtaTrace>,
    /// Kernel launch the CTA belongs to, for checkpointing and release.
    pub kernel: KernelId,
    /// CTA index within the grid.
    pub cta_index: usize,
    /// Warp index within the CTA.
    pub warp_index: usize,
    /// Resident-CTA handle this warp belongs to (slot id in the SM).
    pub cta_slot: usize,
    /// Stream for statistics.
    pub stream: StreamId,
    /// Next instruction index in the warp's trace.
    pub pc: usize,
    /// Bitmask of registers with writes in flight (bit = register id).
    pub pending_writes: u128,
    /// Subset of [`pending_writes`](Self::pending_writes) whose producer is
    /// an outstanding memory load — used to attribute scoreboard stalls to
    /// memory latency rather than ALU dependencies.
    pub pending_mem: u128,
    /// Current blocking status.
    pub status: WarpStatus,
    /// Issue order tiebreaker: launch sequence (lower = older).
    pub age: u64,
}

impl WarpState {
    /// A fresh warp at the start of its trace.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        info: Arc<KernelInfo>,
        cta: Arc<CtaTrace>,
        kernel: KernelId,
        cta_index: usize,
        warp_index: usize,
        cta_slot: usize,
        stream: StreamId,
        age: u64,
    ) -> Self {
        WarpState {
            info,
            cta,
            kernel,
            cta_index,
            warp_index,
            cta_slot,
            stream,
            pc: 0,
            pending_writes: 0,
            pending_mem: 0,
            status: WarpStatus::Ready,
            age,
        }
    }

    /// The next instruction to issue, if the trace has one.
    pub fn next_instr(&self) -> Option<&Instr> {
        self.cta.warps[self.warp_index].get(self.pc)
    }

    /// Whether the scoreboard blocks `instr` (RAW on sources, WAW on the
    /// destination).
    pub fn scoreboard_blocks(&self, instr: &Instr) -> bool {
        if self.pending_writes == 0 {
            return false;
        }
        instr
            .src_regs()
            .any(|r| self.pending_writes & reg_bit(r) != 0)
            || instr
                .dst
                .is_some_and(|d| self.pending_writes & reg_bit(d) != 0)
    }

    /// Mark `reg` as having a write in flight.
    ///
    /// # Panics
    ///
    /// Panics if the register id is 128 or higher (trace generators keep
    /// dependency register ids small).
    pub fn set_pending(&mut self, reg: Reg) {
        self.pending_writes |= reg_bit(reg);
    }

    /// Mark `reg` as having a *memory load* in flight (also sets the plain
    /// pending bit).
    pub fn set_pending_mem(&mut self, reg: Reg) {
        let bit = reg_bit(reg);
        self.pending_writes |= bit;
        self.pending_mem |= bit;
    }

    /// A write to `reg` has retired.
    pub fn clear_pending(&mut self, reg: Reg) {
        let bit = reg_bit(reg);
        self.pending_writes &= !bit;
        self.pending_mem &= !bit;
    }

    /// Whether the scoreboard hazard on `instr` involves a register whose
    /// producer is an outstanding memory load. Only meaningful when
    /// [`scoreboard_blocks`](Self::scoreboard_blocks) is true.
    pub fn blocked_on_mem(&self, instr: &Instr) -> bool {
        if self.pending_mem == 0 {
            return false;
        }
        instr.src_regs().any(|r| self.pending_mem & reg_bit(r) != 0)
            || instr
                .dst
                .is_some_and(|d| self.pending_mem & reg_bit(d) != 0)
    }

    /// Advance past the just-issued instruction.
    pub fn advance(&mut self) {
        self.pc += 1;
    }
}

impl CheckpointState for WarpState {
    /// Warps are written as `(kernel id, cta index)` cursors into the
    /// checkpoint's trace source rather than inline instruction payloads;
    /// restore pages the CTA back in through the source.
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = &'a mut TraceSource;

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u32(self.kernel.0)?;
        w.u64(self.cta_index as u64)?;
        w.u64(self.warp_index as u64)?;
        w.u64(self.cta_slot as u64)?;
        w.stream(self.stream)?;
        w.u64(self.pc as u64)?;
        w.u128(self.pending_writes)?;
        w.u128(self.pending_mem)?;
        w.u8(match self.status {
            WarpStatus::Ready => 0,
            WarpStatus::AtBarrier => 1,
            WarpStatus::Exited => 2,
        })?;
        w.u64(self.age)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, source: &mut TraceSource) -> io::Result<Self> {
        let kernel = KernelId(r.u32()?);
        let cta_index = r.u64()? as usize;
        let warp_index = r.u64()? as usize;
        let cta_slot = r.u64()? as usize;
        let info = source
            .kernel_info(kernel)
            .ok_or_else(|| bad(format!("warp references unknown {kernel}")))?
            .clone();
        if cta_index >= info.grid {
            return Err(bad(format!(
                "warp cta index {cta_index} >= grid {}",
                info.grid
            )));
        }
        // Resident-window sharing: every warp of the same CTA gets the same
        // Arc back, so restore rebuilds exactly the pre-checkpoint sharing.
        let cta = source.fetch_cta(kernel, cta_index)?;
        let n_warps = cta.warps.len();
        if warp_index >= n_warps {
            return Err(bad(format!("warp index {warp_index} >= {n_warps}")));
        }
        let stream = r.stream()?;
        let pc = r.u64()? as usize;
        let pending_writes = r.u128()?;
        let pending_mem = r.u128()?;
        if pending_mem & !pending_writes != 0 {
            return Err(bad("pending_mem must be a subset of pending_writes"));
        }
        let status = match r.u8()? {
            0 => WarpStatus::Ready,
            1 => WarpStatus::AtBarrier,
            2 => WarpStatus::Exited,
            t => return Err(bad(format!("bad warp status tag {t}"))),
        };
        Ok(WarpState {
            info,
            cta,
            kernel,
            cta_index,
            warp_index,
            cta_slot,
            stream,
            pc,
            pending_writes,
            pending_mem,
            status,
            age: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{CtaTrace, MemAccess, Op, Space, WarpTrace};

    fn warp_with(instrs: Vec<Instr>) -> WarpState {
        let mut w = WarpTrace::new();
        w.extend(instrs);
        w.seal();
        let k = crisp_trace::KernelTrace::new("k", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
        let info = Arc::new(KernelInfo::of(&k));
        let cta = Arc::new(k.ctas[0].clone());
        WarpState::new(info, cta, KernelId(0), 0, 0, 0, StreamId(0), 0)
    }

    #[test]
    fn cursor_walks_the_trace() {
        let mut w = warp_with(vec![Instr::alu(Op::IntAlu, Reg(1), &[]), Instr::branch()]);
        assert_eq!(w.next_instr().unwrap().op, Op::IntAlu);
        w.advance();
        assert_eq!(w.next_instr().unwrap().op, Op::Branch);
        w.advance();
        assert_eq!(w.next_instr().unwrap().op, Op::Exit);
        w.advance();
        assert!(w.next_instr().is_none());
    }

    #[test]
    fn raw_hazard_blocks() {
        let mut w = warp_with(vec![Instr::alu(Op::FpFma, Reg(2), &[Reg(1)])]);
        let i = w.next_instr().unwrap().clone();
        assert!(!w.scoreboard_blocks(&i));
        w.set_pending(Reg(1));
        assert!(w.scoreboard_blocks(&i), "RAW on r1");
        w.clear_pending(Reg(1));
        assert!(!w.scoreboard_blocks(&i));
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut w = warp_with(vec![Instr::alu(Op::FpFma, Reg(2), &[])]);
        let i = w.next_instr().unwrap().clone();
        w.set_pending(Reg(2));
        assert!(w.scoreboard_blocks(&i), "WAW on r2");
    }

    #[test]
    fn mem_pending_mask_tracks_load_producers() {
        let mut w = warp_with(vec![Instr::alu(Op::FpFma, Reg(3), &[Reg(1), Reg(2)])]);
        let i = w.next_instr().unwrap().clone();
        w.set_pending(Reg(1)); // ALU producer
        assert!(w.scoreboard_blocks(&i));
        assert!(
            !w.blocked_on_mem(&i),
            "ALU dependency is not a memory stall"
        );
        w.set_pending_mem(Reg(2)); // load producer
        assert!(w.blocked_on_mem(&i), "load dependency is a memory stall");
        w.clear_pending(Reg(2));
        assert!(!w.blocked_on_mem(&i));
        assert!(w.scoreboard_blocks(&i), "r1 still pending");
        assert_eq!(w.pending_mem, 0, "clear_pending clears the mem bit too");
    }

    #[test]
    fn stores_reading_pending_data_block() {
        let mut w = warp_with(vec![Instr::store(
            Reg(3),
            MemAccess::coalesced(Space::Global, crisp_trace::DataClass::Compute, 4, 0, 32),
        )]);
        let i = w.next_instr().unwrap().clone();
        w.set_pending(Reg(3));
        assert!(w.scoreboard_blocks(&i));
    }
}
