//! Static trace analysis.
//!
//! The paper analyses collected traces offline to characterise memory
//! behaviour — e.g. Figure 10's histogram of texture cache lines referenced
//! per CTA within one drawcall. These helpers reproduce that tooling.

use std::collections::{BTreeMap, HashSet};

use crate::isa::{DataClass, Op, Space};
use crate::kernel::{CtaTrace, KernelTrace};

/// Cache line size used throughout CRISP (bytes). Matches the paper's
/// "128B/line" static analysis and the NVIDIA line size.
pub const LINE_BYTES: u64 = 128;

/// Sector size within a line (bytes).
pub const SECTOR_BYTES: u64 = 32;

/// Dynamic instruction mix of a kernel or CTA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Integer ALU instructions.
    pub int_alu: u64,
    /// FP add/mul/fma instructions.
    pub fp: u64,
    /// Special-function-unit instructions.
    pub sfu: u64,
    /// Tensor-core instructions.
    pub tensor: u64,
    /// Control flow (branch/bar/exit).
    pub control: u64,
    /// Global/local loads and stores.
    pub global_mem: u64,
    /// Shared-memory accesses.
    pub shared_mem: u64,
    /// Texture fetches.
    pub tex: u64,
}

impl InstrMix {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.int_alu
            + self.fp
            + self.sfu
            + self.tensor
            + self.control
            + self.global_mem
            + self.shared_mem
            + self.tex
    }

    /// Accumulate one opcode.
    pub fn count(&mut self, op: Op) {
        match op {
            Op::IntAlu => self.int_alu += 1,
            Op::FpAlu | Op::FpMul | Op::FpFma => self.fp += 1,
            Op::Sfu => self.sfu += 1,
            Op::Tensor => self.tensor += 1,
            Op::Branch | Op::Bar | Op::Exit => self.control += 1,
            Op::Ld(Space::Tex) | Op::St(Space::Tex) => self.tex += 1,
            Op::Ld(Space::Shared) | Op::St(Space::Shared) => self.shared_mem += 1,
            Op::Ld(_) | Op::St(_) => self.global_mem += 1,
        }
    }

    /// Mix of a whole kernel.
    pub fn of_kernel(k: &KernelTrace) -> Self {
        let mut m = InstrMix::default();
        for cta in &k.ctas {
            for w in &cta.warps {
                for i in w.iter() {
                    m.count(i.op);
                }
            }
        }
        m
    }
}

/// Distinct cache-line footprint per [`DataClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassFootprint {
    lines: BTreeMap<DataClass, HashSet<u64>>,
}

impl ClassFootprint {
    /// Empty footprint.
    pub fn new() -> Self {
        ClassFootprint::default()
    }

    /// Fold a kernel's accesses in.
    pub fn add_kernel(&mut self, k: &KernelTrace) {
        for cta in &k.ctas {
            for w in &cta.warps {
                for i in w.iter() {
                    if let Some(m) = &i.mem {
                        if m.space.is_cached() {
                            let set = self.lines.entry(m.class).or_default();
                            set.extend(m.distinct_chunks(LINE_BYTES));
                        }
                    }
                }
            }
        }
    }

    /// Distinct 128 B lines touched by `class`.
    pub fn lines(&self, class: DataClass) -> usize {
        self.lines.get(&class).map_or(0, HashSet::len)
    }

    /// Distinct bytes touched by `class`.
    pub fn bytes(&self, class: DataClass) -> u64 {
        self.lines(class) as u64 * LINE_BYTES
    }
}

/// Figure 10: histogram of the number of distinct texture cache lines
/// referenced per CTA within one kernel (one drawcall's fragment work).
///
/// "Each warp executes the same count of texture instructions, but the number
/// of cache lines referenced in each instruction differs. ... most CTAs
/// referenced 3 to 5 cache lines" — per texture instruction, the mean over a
/// drawcall varying 2.54–21.19 across applications.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TexLinesHistogram {
    counts: BTreeMap<u32, u64>,
    total_ctas: u64,
}

impl TexLinesHistogram {
    /// Build the histogram over every CTA of `k`, bucketing by the *average*
    /// number of distinct lines per texture instruction in that CTA
    /// (rounded), matching the paper's per-CTA static analysis.
    pub fn of_kernel(k: &KernelTrace) -> Self {
        let mut h = TexLinesHistogram::default();
        for cta in &k.ctas {
            if let Some(avg) = Self::cta_avg_lines_per_tex(cta) {
                *h.counts.entry(avg.round() as u32).or_insert(0) += 1;
                h.total_ctas += 1;
            }
        }
        h
    }

    /// Average distinct 128 B lines per texture instruction in one CTA, or
    /// `None` if the CTA performs no texture fetches.
    pub fn cta_avg_lines_per_tex(cta: &CtaTrace) -> Option<f64> {
        let mut tex_instrs = 0u64;
        let mut lines = 0u64;
        for w in &cta.warps {
            for i in w.iter() {
                if let Some(m) = &i.mem {
                    if m.space == Space::Tex {
                        tex_instrs += 1;
                        lines += m.distinct_chunks(LINE_BYTES).len() as u64;
                    }
                }
            }
        }
        (tex_instrs > 0).then(|| lines as f64 / tex_instrs as f64)
    }

    /// (bucket, CTA count) pairs in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of CTAs with at least one texture fetch.
    pub fn total_ctas(&self) -> u64 {
        self.total_ctas
    }

    /// Mean bucket value, weighted by CTA count.
    pub fn mean(&self) -> f64 {
        if self.total_ctas == 0 {
            return 0.0;
        }
        let s: u64 = self.counts.iter().map(|(&k, &v)| k as u64 * v).sum();
        s as f64 / self.total_ctas as f64
    }
}

/// Reuse-distance histogram over a kernel's cached accesses: for each
/// line reference, how many *distinct* lines were touched since its last
/// use. Classic locality characterisation — small distances are L1-served,
/// mid distances are what the L2 absorbs, `None` (cold) is compulsory
/// traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReuseHistogram {
    /// Bucketed by log2(distance): bucket `b` counts distances in
    /// `[2^b, 2^(b+1))`; bucket 0 includes distance 0 and 1.
    pub buckets: BTreeMap<u32, u64>,
    /// First-touch (cold) references.
    pub cold: u64,
    /// Total references counted.
    pub total: u64,
}

impl ReuseHistogram {
    /// Build from a kernel, optionally restricted to one [`DataClass`].
    pub fn of_kernel(k: &KernelTrace, class: Option<DataClass>) -> Self {
        let mut h = ReuseHistogram::default();
        // An exact stack-distance computation via an LRU list; fine for
        // analysis-scale traces.
        let mut stack: Vec<u64> = Vec::new();
        for cta in &k.ctas {
            for w in &cta.warps {
                for i in w.iter() {
                    let Some(m) = &i.mem else { continue };
                    if !m.space.is_cached() {
                        continue;
                    }
                    if let Some(c) = class {
                        if m.class != c {
                            continue;
                        }
                    }
                    for line in m.distinct_chunks(LINE_BYTES) {
                        h.total += 1;
                        match stack.iter().position(|&l| l == line) {
                            Some(pos) => {
                                let bucket = (pos.max(1) as f64).log2() as u32;
                                *h.buckets.entry(bucket).or_insert(0) += 1;
                                stack.remove(pos);
                            }
                            None => h.cold += 1,
                        }
                        stack.insert(0, line);
                    }
                }
            }
        }
        h
    }

    /// Fraction of references reused within `2^bucket_limit` distinct lines.
    pub fn short_reuse_fraction(&self, bucket_limit: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let short: u64 = self
            .buckets
            .iter()
            .filter(|(&b, _)| b <= bucket_limit)
            .map(|(_, &n)| n)
            .sum();
        short as f64 / self.total as f64
    }

    /// Fraction of references that were first touches.
    pub fn cold_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cold as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{DataClass, Instr, MemAccess, Op, Reg, Space};
    use crate::kernel::{CtaTrace, KernelTrace, WarpTrace};

    fn tex_warp(lines_per_instr: &[u64]) -> WarpTrace {
        let mut w = WarpTrace::new();
        for (n, &lines) in lines_per_instr.iter().enumerate() {
            // Touch `lines` distinct 128B lines in one scattered access.
            let addrs: Vec<u64> = (0..lines).map(|l| (n as u64) << 20 | (l * 128)).collect();
            w.push(Instr::load(
                Reg(1),
                MemAccess::scattered(Space::Tex, DataClass::Texture, 4, addrs),
            ));
        }
        w.seal();
        w
    }

    #[test]
    fn instr_mix_classifies() {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::FpFma, Reg(0), &[]));
        w.push(Instr::alu(Op::Sfu, Reg(0), &[]));
        w.push(Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
        ));
        w.push(Instr::load(
            Reg(2),
            MemAccess::coalesced(Space::Tex, DataClass::Texture, 4, 0, 32),
        ));
        w.seal();
        let k = KernelTrace::new("k", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
        let m = InstrMix::of_kernel(&k);
        assert_eq!(m.fp, 1);
        assert_eq!(m.sfu, 1);
        assert_eq!(m.shared_mem, 1);
        assert_eq!(m.tex, 1);
        assert_eq!(m.control, 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn footprint_ignores_shared_memory() {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
        ));
        w.push(Instr::load(
            Reg(2),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 32),
        ));
        w.seal();
        let k = KernelTrace::new("k", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
        let mut f = ClassFootprint::new();
        f.add_kernel(&k);
        assert_eq!(
            f.lines(DataClass::Compute),
            1,
            "only the global access counts"
        );
        assert_eq!(f.bytes(DataClass::Compute), 128);
        assert_eq!(f.lines(DataClass::Texture), 0);
    }

    #[test]
    fn footprint_dedups_across_warps() {
        let mk = || {
            let mut w = WarpTrace::new();
            w.push(Instr::load(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x400, 32),
            ));
            w.seal();
            w
        };
        let k = KernelTrace::new("k", 64, 8, 0, vec![CtaTrace::new(vec![mk(), mk()])]);
        let mut f = ClassFootprint::new();
        f.add_kernel(&k);
        assert_eq!(f.lines(DataClass::Compute), 1);
    }

    #[test]
    fn tex_histogram_buckets_by_cta_average() {
        // CTA 0 averages 3 lines/tex-instr; CTA 1 averages 5.
        let c0 = CtaTrace::new(vec![tex_warp(&[3, 3])]);
        let c1 = CtaTrace::new(vec![tex_warp(&[5, 5])]);
        let k = KernelTrace::new("draw", 32, 16, 0, vec![c0, c1]);
        let h = TexLinesHistogram::of_kernel(&k);
        assert_eq!(h.total_ctas(), 2);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(3, 1), (5, 1)]);
        assert!((h.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_histogram_separates_streaming_from_looping() {
        // Streaming: every line touched once → all cold.
        let mut w = WarpTrace::new();
        for i in 0..16u64 {
            w.push(Instr::load(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, i * 128, 32),
            ));
        }
        w.seal();
        let k = KernelTrace::new("stream", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
        let h = ReuseHistogram::of_kernel(&k, None);
        assert_eq!(h.cold, 16);
        assert!((h.cold_fraction() - 1.0).abs() < 1e-12);

        // Looping: two lines alternating → short reuse after warm-up.
        let mut w = WarpTrace::new();
        for i in 0..16u64 {
            w.push(Instr::load(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, (i % 2) * 128, 32),
            ));
        }
        w.seal();
        let k = KernelTrace::new("loop", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
        let h = ReuseHistogram::of_kernel(&k, None);
        assert_eq!(h.cold, 2);
        assert!(h.short_reuse_fraction(0) > 0.8, "{h:?}");
    }

    #[test]
    fn reuse_histogram_filters_by_class() {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Tex, DataClass::Texture, 4, 0, 32),
        ));
        w.push(Instr::load(
            Reg(2),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x1000, 32),
        ));
        w.seal();
        let k = KernelTrace::new("k", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
        let all = ReuseHistogram::of_kernel(&k, None);
        let tex = ReuseHistogram::of_kernel(&k, Some(DataClass::Texture));
        assert_eq!(all.total, 2);
        assert_eq!(tex.total, 1);
    }

    #[test]
    fn tex_histogram_skips_ctas_without_tex() {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::IntAlu, Reg(0), &[]));
        w.seal();
        let k = KernelTrace::new("k", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
        let h = TexLinesHistogram::of_kernel(&k);
        assert_eq!(h.total_ctas(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
