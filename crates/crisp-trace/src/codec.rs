//! Compact binary serialization for trace bundles.
//!
//! Trace-driven simulation lives and dies by trace files — the CRISP
//! artifact ships hundreds of gigabytes of them. This codec stores a
//! [`TraceBundle`] in a dense binary form: one byte per opcode,
//! LEB128 varints for counts, and zig-zag delta encoding for per-lane
//! addresses (consecutive lanes usually touch consecutive addresses, so
//! deltas are tiny). No external crates; plain `std::io`.
//!
//! Since format version 2 the container also carries a **kernel/CTA offset
//! index**: the stream directory stores, per kernel launch, the byte span of
//! every CTA's instruction payload. [`TraceSource`](crate::TraceSource) uses
//! that index to demand-page individual CTAs out of a file without
//! materializing the whole bundle; this module keeps reading version-1
//! (index-less) files through a compatibility scan.
//!
//! # Example
//!
//! ```
//! # use crisp_trace::*;
//! # use crisp_trace::codec::write_bundle;
//! let mut s = Stream::new(StreamId(0), StreamKind::Compute);
//! let mut w = WarpTrace::new();
//! w.push(Instr::alu(Op::FpFma, Reg(1), &[Reg(2)]));
//! w.seal();
//! s.launch(KernelTrace::new("k", 32, 8, 0, vec![CtaTrace::new(vec![w])]));
//! let bundle = TraceBundle::from_streams(vec![s]);
//!
//! let mut buf = Vec::new();
//! write_bundle(&bundle, &mut buf)?;
//! let mut src = TraceInput::reader(std::io::Cursor::new(buf)).open()?;
//! assert_eq!(src.to_bundle()?, bundle);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{self, Read, Write};

use crate::isa::{DataClass, Instr, MemAccess, Op, Reg, Space, MAX_SRCS};
use crate::kernel::{CtaTrace, KernelTrace, WarpTrace};
use crate::stream::{Command, Stream, StreamId, StreamKind, TraceBundle};

pub(crate) const MAGIC: &[u8; 4] = b"CRSP";
/// The original, index-less container layout (kernels inline in the stream
/// directory). Still readable; no longer written.
pub(crate) const VERSION_V1: u32 = 1;
/// The indexed layout: a stream directory with per-CTA `(offset, len)` spans
/// followed by one contiguous payload of self-contained CTA blobs.
pub(crate) const VERSION_V2: u32 = 2;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read and validate a 4-byte magic tag, reporting found-vs-expected on a
/// mismatch. `what` names the format (e.g. `"CRSP trace"`) so that feeding a
/// checkpoint to the trace reader — or vice versa — fails with a message that
/// identifies both files.
///
/// # Errors
///
/// `InvalidData` when the tag differs from `expected`; I/O errors otherwise.
pub fn check_magic<R: Read>(r: &mut R, expected: &[u8; 4], what: &str) -> io::Result<()> {
    let mut found = [0u8; 4];
    r.read_exact(&mut found)?;
    if &found != expected {
        return Err(bad(&format!(
            "not a {what} file: found magic `{}`, expected `{}`",
            found.escape_ascii(),
            expected.escape_ascii()
        )));
    }
    Ok(())
}

/// Read a little-endian `u32` version field and require it to equal
/// `expected`, reporting found-vs-expected on a mismatch.
///
/// # Errors
///
/// `InvalidData` when the version differs from `expected`; I/O errors
/// otherwise.
pub fn check_version<R: Read>(r: &mut R, expected: u32, what: &str) -> io::Result<()> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    let found = u32::from_le_bytes(buf);
    if found != expected {
        return Err(bad(&format!(
            "unsupported {what} version: found {found}, expected {expected}"
        )));
    }
    Ok(())
}

/// Write `v` as an LEB128 varint.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Read an LEB128 varint written by [`write_varint`].
///
/// # Errors
///
/// `InvalidData` on a varint longer than 64 bits; I/O errors otherwise.
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(bad("varint overflow"));
        }
        v |= ((b[0] & 0x7F) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zig-zag map a signed value onto an unsigned one so small magnitudes of
/// either sign encode as short varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn space_tag(s: Space) -> u8 {
    match s {
        Space::Global => 0,
        Space::Shared => 1,
        Space::Local => 2,
        Space::Tex => 3,
    }
}

fn tag_space(t: u8) -> io::Result<Space> {
    Ok(match t {
        0 => Space::Global,
        1 => Space::Shared,
        2 => Space::Local,
        3 => Space::Tex,
        _ => return Err(bad("bad space tag")),
    })
}

fn op_tag(op: Op) -> u8 {
    match op {
        Op::IntAlu => 0,
        Op::FpAlu => 1,
        Op::FpMul => 2,
        Op::FpFma => 3,
        Op::Sfu => 4,
        Op::Tensor => 5,
        Op::Branch => 6,
        Op::Bar => 7,
        Op::Exit => 8,
        Op::Ld(s) => 9 + space_tag(s),
        Op::St(s) => 13 + space_tag(s),
    }
}

fn tag_op(t: u8) -> io::Result<Op> {
    Ok(match t {
        0 => Op::IntAlu,
        1 => Op::FpAlu,
        2 => Op::FpMul,
        3 => Op::FpFma,
        4 => Op::Sfu,
        5 => Op::Tensor,
        6 => Op::Branch,
        7 => Op::Bar,
        8 => Op::Exit,
        9..=12 => Op::Ld(tag_space(t - 9)?),
        13..=16 => Op::St(tag_space(t - 13)?),
        _ => return Err(bad("bad op tag")),
    })
}

fn class_tag(c: DataClass) -> u8 {
    match c {
        DataClass::Texture => 0,
        DataClass::Pipeline => 1,
        DataClass::Compute => 2,
    }
}

fn tag_class(t: u8) -> io::Result<DataClass> {
    Ok(match t {
        0 => DataClass::Texture,
        1 => DataClass::Pipeline,
        2 => DataClass::Compute,
        _ => return Err(bad("bad class tag")),
    })
}

fn write_instr<W: Write>(w: &mut W, i: &Instr) -> io::Result<()> {
    w.write_all(&[op_tag(i.op)])?;
    let dst = i.dst.map_or(u16::MAX, |r| r.0);
    w.write_all(&dst.to_le_bytes())?;
    for s in &i.srcs {
        let v = s.map_or(u16::MAX, |r| r.0);
        w.write_all(&v.to_le_bytes())?;
    }
    if let Some(m) = &i.mem {
        w.write_all(&[space_tag(m.space), class_tag(m.class), m.width])?;
        write_varint(w, m.addrs.len() as u64)?;
        let mut prev = 0i64;
        for &a in &m.addrs {
            let delta = a as i64 - prev;
            write_varint(w, zigzag(delta))?;
            prev = a as i64;
        }
    }
    Ok(())
}

fn read_instr<R: Read>(r: &mut R) -> io::Result<Instr> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let op = tag_op(tag[0])?;
    let mut u16buf = [0u8; 2];
    r.read_exact(&mut u16buf)?;
    let dst_raw = u16::from_le_bytes(u16buf);
    let dst = (dst_raw != u16::MAX).then_some(Reg(dst_raw));
    let mut srcs = [None; MAX_SRCS];
    for s in &mut srcs {
        r.read_exact(&mut u16buf)?;
        let v = u16::from_le_bytes(u16buf);
        *s = (v != u16::MAX).then_some(Reg(v));
    }
    let mem = if op.is_mem() {
        let mut hdr = [0u8; 3];
        r.read_exact(&mut hdr)?;
        let space = tag_space(hdr[0])?;
        let class = tag_class(hdr[1])?;
        let width = hdr[2];
        let n = read_varint(r)? as usize;
        if n == 0 || n > crate::WARP_SIZE {
            return Err(bad("bad lane count"));
        }
        let mut addrs = Vec::with_capacity(n);
        let mut prev = 0i64;
        for _ in 0..n {
            let delta = unzigzag(read_varint(r)?);
            prev = prev.wrapping_add(delta);
            addrs.push(prev as u64);
        }
        Some(MemAccess {
            space,
            class,
            width,
            addrs,
        })
    } else {
        None
    };
    Ok(Instr { op, dst, srcs, mem })
}

/// Write a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Read a string written by [`write_string`]. Lengths above 1 MiB are
/// rejected before allocating, so corrupt length prefixes cannot OOM.
///
/// # Errors
///
/// `InvalidData` on an oversized length or invalid UTF-8.
pub fn read_string<R: Read>(r: &mut R) -> io::Result<String> {
    let n = read_varint(r)? as usize;
    if n > 1 << 20 {
        return Err(bad("string too long"));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("invalid utf-8"))
}

/// Write one [`KernelTrace`] in the CRSP per-kernel layout (also reused by
/// the checkpoint format for in-flight kernels).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_kernel<W: Write>(w: &mut W, k: &KernelTrace) -> io::Result<()> {
    write_string(w, &k.name)?;
    w.write_all(&k.block_threads.to_le_bytes())?;
    w.write_all(&k.regs_per_thread.to_le_bytes())?;
    w.write_all(&k.smem_per_cta.to_le_bytes())?;
    write_varint(w, k.ctas.len() as u64)?;
    for cta in &k.ctas {
        write_varint(w, cta.warps.len() as u64)?;
        for warp in &cta.warps {
            write_varint(w, warp.len() as u64)?;
            for i in warp.iter() {
                write_instr(w, i)?;
            }
        }
    }
    Ok(())
}

/// Read a kernel written by [`write_kernel`].
///
/// # Errors
///
/// `InvalidData` on structural corruption — including CTAs with more warps
/// than the block geometry allows, which would otherwise trip the
/// [`KernelTrace::new`] assertion.
pub fn read_kernel<R: Read>(r: &mut R) -> io::Result<KernelTrace> {
    let name = read_string(r)?;
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    let block_threads = u32::from_le_bytes(u32buf);
    r.read_exact(&mut u32buf)?;
    let regs = u32::from_le_bytes(u32buf);
    r.read_exact(&mut u32buf)?;
    let smem = u32::from_le_bytes(u32buf);
    let max_warps = block_threads
        .max(crate::WARP_SIZE as u32)
        .div_ceil(crate::WARP_SIZE as u32) as usize;
    let grid = read_varint(r)? as usize;
    let mut ctas = Vec::with_capacity(grid.min(1 << 20));
    for _ in 0..grid {
        let n_warps = read_varint(r)? as usize;
        if n_warps > max_warps {
            return Err(bad("cta has more warps than the block geometry allows"));
        }
        let mut warps = Vec::with_capacity(n_warps.min(64));
        for _ in 0..n_warps {
            let n_instrs = read_varint(r)? as usize;
            let mut warp = WarpTrace::new();
            for _ in 0..n_instrs {
                warp.push(read_instr(r)?);
            }
            warps.push(warp);
        }
        ctas.push(CtaTrace::new(warps));
    }
    Ok(KernelTrace::new(name, block_threads, regs, smem, ctas))
}

/// Encode one CTA's instruction streams as a self-contained blob:
/// `n_warps` varint, then per warp `n_instrs` varint + instructions.
pub(crate) fn write_cta_blob<W: Write>(w: &mut W, cta: &CtaTrace) -> io::Result<()> {
    write_varint(w, cta.warps.len() as u64)?;
    for warp in &cta.warps {
        write_varint(w, warp.len() as u64)?;
        for i in warp.iter() {
            write_instr(w, i)?;
        }
    }
    Ok(())
}

/// Decode a blob written by [`write_cta_blob`]. `max_warps` comes from the
/// launch geometry; a blob claiming more is structural corruption.
pub(crate) fn read_cta_blob<R: Read>(r: &mut R, max_warps: usize) -> io::Result<CtaTrace> {
    let n_warps = read_varint(r)? as usize;
    if n_warps > max_warps {
        return Err(bad("cta has more warps than the block geometry allows"));
    }
    let mut warps = Vec::with_capacity(n_warps.min(64));
    for _ in 0..n_warps {
        let n_instrs = read_varint(r)? as usize;
        let mut warp = WarpTrace::new();
        for _ in 0..n_instrs {
            warp.push(read_instr(r)?);
        }
        warps.push(warp);
    }
    Ok(CtaTrace::new(warps))
}

/// Maximum warps per CTA implied by a block size (matches
/// [`KernelTrace::new`]'s clamping).
pub(crate) fn max_warps_of(block_threads: u32) -> usize {
    block_threads
        .max(crate::WARP_SIZE as u32)
        .div_ceil(crate::WARP_SIZE as u32) as usize
}

/// One kernel entry of a version-2 stream directory: launch geometry plus
/// the byte span of every CTA blob, relative to the payload start.
#[derive(Debug, Clone)]
pub(crate) struct DirKernel {
    pub name: String,
    pub block_threads: u32,
    pub regs_per_thread: u32,
    pub smem_per_cta: u32,
    /// Per-CTA `(offset, len)` into the payload; the grid size is the length.
    pub spans: Vec<(u64, u64)>,
}

/// One command of a version-2 stream directory.
#[derive(Debug, Clone)]
pub(crate) enum DirCmd {
    Launch(DirKernel),
    Marker(String),
}

/// One stream of a version-2 directory.
#[derive(Debug, Clone)]
pub(crate) struct DirStream {
    pub id: StreamId,
    pub kind: StreamKind,
    pub cmds: Vec<DirCmd>,
}

/// Serialize a bundle in the version-2 indexed layout, with a hook that lets
/// the chaos harness corrupt the index on the way out: `mutate_span` sees
/// every CTA span (global index order) and may rewrite it, and `payload_pad`
/// appends bytes to the payload that no span covers.
fn write_bundle_v2_core<W: Write>(
    bundle: &TraceBundle,
    w: &mut W,
    mutate_span: &mut dyn FnMut(usize, (u64, u64)) -> (u64, u64),
    payload_pad: &[u8],
) -> io::Result<()> {
    // Encode every CTA blob into the payload first, recording spans.
    let mut payload = Vec::new();
    let mut spans: Vec<(u64, u64)> = Vec::new();
    for s in &bundle.streams {
        for c in &s.commands {
            if let Command::Launch(k) = c {
                for cta in &k.ctas {
                    let offset = payload.len() as u64;
                    write_cta_blob(&mut payload, cta)?;
                    spans.push((offset, payload.len() as u64 - offset));
                }
            }
        }
    }
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    write_varint(w, bundle.streams.len() as u64)?;
    let mut span_idx = 0usize;
    for s in &bundle.streams {
        w.write_all(&s.id.0.to_le_bytes())?;
        w.write_all(&[match s.kind {
            StreamKind::Graphics => 0,
            StreamKind::Compute => 1,
        }])?;
        write_varint(w, s.commands.len() as u64)?;
        for c in &s.commands {
            match c {
                Command::Launch(k) => {
                    w.write_all(&[0])?;
                    write_string(w, &k.name)?;
                    w.write_all(&k.block_threads.to_le_bytes())?;
                    w.write_all(&k.regs_per_thread.to_le_bytes())?;
                    w.write_all(&k.smem_per_cta.to_le_bytes())?;
                    write_varint(w, k.ctas.len() as u64)?;
                    for _ in &k.ctas {
                        let (off, len) = mutate_span(span_idx, spans[span_idx]);
                        span_idx += 1;
                        write_varint(w, off)?;
                        write_varint(w, len)?;
                    }
                }
                Command::Marker(m) => {
                    w.write_all(&[1])?;
                    write_string(w, m)?;
                }
            }
        }
    }
    write_varint(w, payload.len() as u64 + payload_pad.len() as u64)?;
    w.write_all(&payload)?;
    w.write_all(payload_pad)
}

/// Write a bundle in the CRSP binary format (version 2, indexed).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_bundle<W: Write>(bundle: &TraceBundle, w: &mut W) -> io::Result<()> {
    write_bundle_v2_core(bundle, w, &mut |_, s| s, &[])
}

/// Write a bundle with a corrupted CTA index — the fault-injection hook
/// behind the chaos harness. `mutate_span` may rewrite any `(offset, len)`
/// span (called once per CTA in global index order); a non-empty
/// `payload_pad` leaves payload bytes no span covers.
#[doc(hidden)]
pub fn write_bundle_mutated<W: Write>(
    bundle: &TraceBundle,
    w: &mut W,
    mut mutate_span: impl FnMut(usize, (u64, u64)) -> (u64, u64),
    payload_pad: &[u8],
) -> io::Result<()> {
    write_bundle_v2_core(bundle, w, &mut mutate_span, payload_pad)
}

/// Write a bundle in the legacy version-1 (index-less) layout. Only useful
/// for exercising the compatibility reader; new files are always version 2.
#[doc(hidden)]
pub fn write_bundle_v1<W: Write>(bundle: &TraceBundle, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    write_varint(w, bundle.streams.len() as u64)?;
    for s in &bundle.streams {
        w.write_all(&s.id.0.to_le_bytes())?;
        w.write_all(&[match s.kind {
            StreamKind::Graphics => 0,
            StreamKind::Compute => 1,
        }])?;
        write_varint(w, s.commands.len() as u64)?;
        for c in &s.commands {
            match c {
                Command::Launch(k) => {
                    w.write_all(&[0])?;
                    write_kernel(w, k)?;
                }
                Command::Marker(m) => {
                    w.write_all(&[1])?;
                    write_string(w, m)?;
                }
            }
        }
    }
    Ok(())
}

/// Read the little-endian `u32` version field after the magic.
pub(crate) fn read_version<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn unsupported_version(found: u32) -> io::Error {
    bad(&format!(
        "unsupported CRSP trace version: found {found}, expected 1 or 2"
    ))
}

/// Read the stream directory and payload length of a version-2 container
/// (everything between the version field and the payload bytes), validating
/// the CTA index: every span must lie inside the payload, spans must not
/// overlap, and together they must cover the payload exactly.
pub(crate) fn read_directory_v2<R: Read>(r: &mut R) -> io::Result<(Vec<DirStream>, u64)> {
    let mut u32buf = [0u8; 4];
    let n_streams = read_varint(r)? as usize;
    let mut streams = Vec::with_capacity(n_streams.min(1024));
    for _ in 0..n_streams {
        r.read_exact(&mut u32buf)?;
        let id = StreamId(u32::from_le_bytes(u32buf));
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        let kind = match kind[0] {
            0 => StreamKind::Graphics,
            1 => StreamKind::Compute,
            _ => return Err(bad("bad stream kind")),
        };
        let n_cmds = read_varint(r)? as usize;
        let mut cmds = Vec::with_capacity(n_cmds.min(1 << 16));
        for _ in 0..n_cmds {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            match tag[0] {
                0 => {
                    let name = read_string(r)?;
                    r.read_exact(&mut u32buf)?;
                    let block_threads = u32::from_le_bytes(u32buf);
                    r.read_exact(&mut u32buf)?;
                    let regs_per_thread = u32::from_le_bytes(u32buf);
                    r.read_exact(&mut u32buf)?;
                    let smem_per_cta = u32::from_le_bytes(u32buf);
                    let grid = read_varint(r)? as usize;
                    let mut spans = Vec::with_capacity(grid.min(1 << 20));
                    for _ in 0..grid {
                        let off = read_varint(r)?;
                        let len = read_varint(r)?;
                        spans.push((off, len));
                    }
                    cmds.push(DirCmd::Launch(DirKernel {
                        name,
                        block_threads,
                        regs_per_thread,
                        smem_per_cta,
                        spans,
                    }));
                }
                1 => cmds.push(DirCmd::Marker(read_string(r)?)),
                _ => return Err(bad("bad command tag")),
            }
        }
        if streams.iter().any(|s: &DirStream| s.id == id) {
            return Err(bad(&format!("duplicate stream id {id} in directory")));
        }
        streams.push(DirStream { id, kind, cmds });
    }
    let payload_len = read_varint(r)?;
    validate_index(&streams, payload_len)?;
    Ok((streams, payload_len))
}

/// The three structural invariants of the CTA index, each with its own
/// error so fault injection (and users debugging corrupt files) can tell
/// them apart: spans in bounds, no overlap, exact payload coverage.
fn validate_index(streams: &[DirStream], payload_len: u64) -> io::Result<()> {
    let mut all: Vec<(u64, u64)> = Vec::new();
    for s in streams {
        for c in &s.cmds {
            if let DirCmd::Launch(k) = c {
                all.extend_from_slice(&k.spans);
            }
        }
    }
    for &(off, len) in &all {
        let end = off
            .checked_add(len)
            .ok_or_else(|| bad("CTA span offset overflow"))?;
        if end > payload_len {
            return Err(bad(&format!(
                "CTA span out of bounds: offset {off} + len {len} exceeds payload of \
                 {payload_len} bytes"
            )));
        }
    }
    all.sort_unstable();
    let mut covered = 0u64;
    for &(off, len) in &all {
        if off < covered {
            return Err(bad("overlapping CTA spans in trace index"));
        }
        if off > covered {
            return Err(bad(&format!(
                "trace index does not cover the payload: gap at byte {covered}"
            )));
        }
        covered = off + len;
    }
    if covered != payload_len {
        return Err(bad(&format!(
            "trace index does not cover the payload: {covered} of {payload_len} bytes indexed"
        )));
    }
    Ok(())
}

/// Read the rest of a version-1 container (after magic + version).
pub(crate) fn read_bundle_rest_v1<R: Read>(r: &mut R) -> io::Result<TraceBundle> {
    let mut u32buf = [0u8; 4];
    let n_streams = read_varint(r)? as usize;
    let mut streams = Vec::with_capacity(n_streams.min(1024));
    for _ in 0..n_streams {
        r.read_exact(&mut u32buf)?;
        let id = StreamId(u32::from_le_bytes(u32buf));
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        let kind = match kind[0] {
            0 => StreamKind::Graphics,
            1 => StreamKind::Compute,
            _ => return Err(bad("bad stream kind")),
        };
        let n_cmds = read_varint(r)? as usize;
        let mut s = Stream::new(id, kind);
        for _ in 0..n_cmds {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            match tag[0] {
                0 => {
                    s.launch(read_kernel(r)?);
                }
                1 => {
                    s.marker(read_string(r)?);
                }
                _ => return Err(bad("bad command tag")),
            }
        }
        if streams.iter().any(|x: &Stream| x.id == id) {
            return Err(bad(&format!("duplicate stream id {id} in directory")));
        }
        streams.push(s);
    }
    Ok(TraceBundle::from_streams(streams))
}

/// Read the rest of a version-2 container (after magic + version),
/// materializing every CTA. The payload is consumed sequentially — the
/// index validation guarantees spans tile it in offset order — so this
/// works on plain non-seekable readers.
pub(crate) fn read_bundle_rest_v2<R: Read>(r: &mut R) -> io::Result<TraceBundle> {
    let (dir, payload_len) = read_directory_v2(r)?;
    // Decode blobs in payload order, then hand them back out in index order.
    let mut order: Vec<(u64, u64, usize, usize, usize)> = Vec::new(); // (off, len, stream, cmd, cta)
    for (si, s) in dir.iter().enumerate() {
        for (ci, c) in s.cmds.iter().enumerate() {
            if let DirCmd::Launch(k) = c {
                for (cta, &(off, len)) in k.spans.iter().enumerate() {
                    order.push((off, len, si, ci, cta));
                }
            }
        }
    }
    order.sort_unstable();
    let mut decoded: std::collections::BTreeMap<(usize, usize, usize), CtaTrace> =
        std::collections::BTreeMap::new();
    let mut pos = 0u64;
    for &(off, len, si, ci, cta) in &order {
        debug_assert_eq!(off, pos, "index validation guarantees exact tiling");
        let max_warps = match &dir[si].cmds[ci] {
            DirCmd::Launch(k) => max_warps_of(k.block_threads),
            DirCmd::Marker(_) => unreachable!("order only holds launches"),
        };
        let mut lim = r.take(len);
        let blob = read_cta_blob(&mut lim, max_warps)?;
        if lim.limit() != 0 {
            return Err(bad("CTA blob shorter than its indexed span"));
        }
        decoded.insert((si, ci, cta), blob);
        pos = off + len;
    }
    debug_assert_eq!(pos, payload_len);
    let mut streams = Vec::with_capacity(dir.len());
    for (si, d) in dir.into_iter().enumerate() {
        let mut s = Stream::new(d.id, d.kind);
        for (ci, c) in d.cmds.into_iter().enumerate() {
            match c {
                DirCmd::Launch(k) => {
                    let ctas: Vec<CtaTrace> = (0..k.spans.len())
                        .map(|cta| decoded.remove(&(si, ci, cta)).expect("decoded above"))
                        .collect();
                    s.launch(KernelTrace::new(
                        k.name,
                        k.block_threads,
                        k.regs_per_thread,
                        k.smem_per_cta,
                        ctas,
                    ));
                }
                DirCmd::Marker(m) => {
                    s.marker(m);
                }
            }
        }
        streams.push(s);
    }
    Ok(TraceBundle::from_streams(streams))
}

/// Internal bundle reader shared by the deprecated entry points and
/// [`TraceSource`](crate::TraceSource): dispatches on the version field and
/// materializes the whole bundle.
pub(crate) fn read_bundle_impl<R: Read>(r: &mut R) -> io::Result<TraceBundle> {
    check_magic(r, MAGIC, "CRSP trace")?;
    match read_version(r)? {
        VERSION_V1 => read_bundle_rest_v1(r),
        VERSION_V2 => read_bundle_rest_v2(r),
        found => Err(unsupported_version(found)),
    }
}

/// Read a bundle written by [`write_bundle`] (either format version),
/// materializing every CTA in memory.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number, version or structure, and
/// propagates underlying I/O errors.
#[deprecated(
    since = "0.6.0",
    note = "open a `TraceSource` via `TraceInput` instead; it demand-pages CTAs \
            and still offers `to_bundle()` for full materialization"
)]
pub fn read_bundle<R: Read>(r: &mut R) -> io::Result<TraceBundle> {
    read_bundle_impl(r)
}

/// Write a bundle to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(bundle: &TraceBundle, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_bundle(bundle, &mut f)?;
    f.flush()
}

/// Read a bundle from a file, materializing every CTA in memory.
///
/// # Errors
///
/// Propagates filesystem errors and format errors from [`read_bundle`].
#[deprecated(
    since = "0.6.0",
    note = "open a `TraceSource` via `TraceInput::from(path).open()` instead; it \
            demand-pages CTAs and still offers `to_bundle()` for full materialization"
)]
pub fn load(path: impl AsRef<std::path::Path>) -> io::Result<TraceBundle> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_bundle_impl(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{DataClass, Instr, MemAccess, Op, Reg, Space};

    fn sample_bundle() -> TraceBundle {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::FpFma, Reg(3), &[Reg(1), Reg(2)]));
        w.push(Instr::load(
            Reg(4),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x1234_5678, 32),
        ));
        w.push(Instr::load(
            Reg(5),
            MemAccess::scattered(Space::Tex, DataClass::Texture, 8, vec![500, 100, 900_000]),
        ));
        w.push(Instr::store(
            Reg(3),
            MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 16),
        ));
        w.push(Instr::bar());
        w.push(Instr::branch());
        w.seal();
        let k = KernelTrace::new(
            "kern",
            64,
            24,
            4096,
            vec![CtaTrace::new(vec![w.clone(), w])],
        );
        let mut g = Stream::new(StreamId(0), StreamKind::Graphics);
        g.marker("draw:x").launch(k.clone());
        let mut c = Stream::new(StreamId(1), StreamKind::Compute);
        c.launch(k);
        TraceBundle::from_streams(vec![g, c])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        write_bundle(&b, &mut buf).unwrap();
        let back = read_bundle_impl(&mut buf.as_slice()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn v1_compat_roundtrip_preserves_everything() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        write_bundle_v1(&b, &mut buf).unwrap();
        let back = read_bundle_impl(&mut buf.as_slice()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn deprecated_entry_points_still_work() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        write_bundle(&b, &mut buf).unwrap();
        #[allow(deprecated)]
        let back = read_bundle(&mut buf.as_slice()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn encoding_is_compact() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        write_bundle(&b, &mut buf).unwrap();
        // 2 streams × (7 instrs × 2 warps); a coalesced 32-lane access costs
        // a couple of bytes per lane, not 8. The CTA index adds a few bytes
        // per CTA on top of the v1 size.
        assert!(buf.len() < 900, "encoding too large: {} bytes", buf.len());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = b"NOPE".to_vec();
        buf.extend_from_slice(&1u32.to_le_bytes());
        assert!(read_bundle_impl(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn magic_errors_report_found_and_expected() {
        let mut buf = b"CKPT".to_vec();
        buf.extend_from_slice(&1u32.to_le_bytes());
        let err = read_bundle_impl(&mut buf.as_slice())
            .unwrap_err()
            .to_string();
        assert!(err.contains("CKPT"), "found magic missing: {err}");
        assert!(err.contains("CRSP"), "expected magic missing: {err}");
    }

    #[test]
    fn version_errors_report_found_and_expected() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&42u32.to_le_bytes());
        let err = read_bundle_impl(&mut buf.as_slice())
            .unwrap_err()
            .to_string();
        assert!(err.contains("found 42"), "found version missing: {err}");
        assert!(
            err.contains("expected 1 or 2"),
            "expected versions missing: {err}"
        );
    }

    #[test]
    fn out_of_bounds_span_is_a_distinct_error() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        write_bundle_mutated(
            &b,
            &mut buf,
            |i, (off, len)| {
                if i == 0 {
                    (off + (1 << 20), len)
                } else {
                    (off, len)
                }
            },
            &[],
        )
        .unwrap();
        let err = read_bundle_impl(&mut buf.as_slice())
            .unwrap_err()
            .to_string();
        assert!(err.contains("out of bounds"), "wrong error: {err}");
    }

    #[test]
    fn overlapping_spans_are_a_distinct_error() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        // Point the second CTA span at the first one's bytes.
        let mut first: Option<(u64, u64)> = None;
        write_bundle_mutated(
            &b,
            &mut buf,
            |i, span| {
                if i == 0 {
                    first = Some(span);
                    span
                } else {
                    first.unwrap()
                }
            },
            &[],
        )
        .unwrap();
        let err = read_bundle_impl(&mut buf.as_slice())
            .unwrap_err()
            .to_string();
        assert!(err.contains("overlapping"), "wrong error: {err}");
    }

    #[test]
    fn uncovered_payload_is_a_distinct_error() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        write_bundle_mutated(&b, &mut buf, |_, s| s, &[0xAA; 7]).unwrap();
        let err = read_bundle_impl(&mut buf.as_slice())
            .unwrap_err()
            .to_string();
        assert!(err.contains("does not cover"), "wrong error: {err}");
    }

    #[test]
    fn overfull_cta_in_stream_is_an_error_not_a_panic() {
        // Hand-craft a kernel whose CTA claims 2 warps in a 32-thread block.
        let mut buf = Vec::new();
        write_string(&mut buf, "k").unwrap();
        buf.extend_from_slice(&32u32.to_le_bytes()); // block_threads
        buf.extend_from_slice(&8u32.to_le_bytes()); // regs
        buf.extend_from_slice(&0u32.to_le_bytes()); // smem
        write_varint(&mut buf, 1).unwrap(); // grid
        write_varint(&mut buf, 2).unwrap(); // warps in cta 0: too many
        assert!(read_kernel(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let b = sample_bundle();
        let mut buf = Vec::new();
        write_bundle(&b, &mut buf).unwrap();
        for cut in [5, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_bundle_impl(&mut buf[..cut].to_vec().as_slice()).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let b = sample_bundle();
        let p = std::env::temp_dir().join("crisp_codec_test.crsp");
        save(&b, &p).unwrap();
        #[allow(deprecated)]
        let back = load(&p).unwrap();
        assert_eq!(b, back);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn all_op_tags_roundtrip() {
        let spaces = [Space::Global, Space::Shared, Space::Local, Space::Tex];
        let mut ops = vec![
            Op::IntAlu,
            Op::FpAlu,
            Op::FpMul,
            Op::FpFma,
            Op::Sfu,
            Op::Tensor,
            Op::Branch,
            Op::Bar,
            Op::Exit,
        ];
        for s in spaces {
            ops.push(Op::Ld(s));
            ops.push(Op::St(s));
        }
        for op in ops {
            assert_eq!(tag_op(op_tag(op)).unwrap(), op);
        }
    }
}
