//! The instruction-level trace format.
//!
//! Instructions carry only what a trace-driven timing model consumes:
//! an opcode *class* (which selects a latency/throughput pipe), register-level
//! dependencies, and — for memory instructions — per-lane addresses tagged
//! with an address space and a data class.

/// Number of threads in a warp. Fixed at 32, matching every NVIDIA GPU the
/// paper models.
pub const WARP_SIZE: usize = 32;

/// Maximum number of source registers recorded per instruction.
pub const MAX_SRCS: usize = 3;

/// An architectural register identifier local to a warp.
///
/// Trace-level dependencies are expressed between these; the timing model's
/// scoreboard tracks pending writes per `(warp, Reg)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

/// Memory address spaces distinguished by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device memory through L1 → L2 → DRAM.
    Global,
    /// On-chip shared memory (scratchpad); never leaves the SM.
    Shared,
    /// Thread-local spill space; behaves like `Global` in the hierarchy.
    Local,
    /// Texture fetch. CRISP routes these through the *unified* L1 data cache
    /// (contemporary GPUs no longer have a separate texture cache), but the
    /// tag is kept so texture traffic can be accounted separately.
    Tex,
}

impl Space {
    /// Whether accesses to this space traverse the L1/L2/DRAM hierarchy.
    pub fn is_cached(self) -> bool {
        !matches!(self, Space::Shared)
    }
}

/// Classification of the data a memory access touches, used for the L2
/// composition case studies (paper Figures 11 and 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataClass {
    /// Texel data fetched by texture units.
    Texture,
    /// Inter-stage graphics pipeline data: vertex attributes redistributed
    /// through the L2, framebuffer writes from the black-box stages.
    Pipeline,
    /// General-purpose compute data (CUDA kernels).
    Compute,
}

impl DataClass {
    /// All classes, in display order.
    pub const ALL: [DataClass; 3] = [DataClass::Texture, DataClass::Pipeline, DataClass::Compute];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DataClass::Texture => "texture",
            DataClass::Pipeline => "pipeline",
            DataClass::Compute => "compute",
        }
    }
}

/// Dynamic opcode classes.
///
/// The timing model maps each class to an execution pipe (FP / INT / SFU /
/// TENSOR / LSU) with a (latency, initiation-interval) pair; the functional
/// semantics are irrelevant to replay and are not recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer ALU (IADD, LOP, SHF, ...).
    IntAlu,
    /// Single-cycle-throughput FP add/compare class.
    FpAlu,
    /// FP multiply.
    FpMul,
    /// Fused multiply-add (the workhorse of shading and GEMM).
    FpFma,
    /// Special-function unit: rsqrt, sin, exp, interpolation.
    Sfu,
    /// Tensor-core MMA class.
    Tensor,
    /// Control flow; models branch latency only (divergence is already baked
    /// into the trace via active masks).
    Branch,
    /// CTA-wide barrier.
    Bar,
    /// Warp termination.
    Exit,
    /// Memory load from `Space`.
    Ld(Space),
    /// Memory store to `Space`.
    St(Space),
}

impl Op {
    /// Whether this opcode carries a [`MemAccess`].
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Ld(_) | Op::St(_))
    }

    /// Whether this opcode is a load.
    pub fn is_load(self) -> bool {
        matches!(self, Op::Ld(_))
    }
}

/// The memory behaviour of one dynamic warp instruction: per-active-lane
/// byte addresses plus space/class tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// Address space.
    pub space: Space,
    /// Data classification for composition accounting.
    pub class: DataClass,
    /// Bytes accessed per lane (4 for a 32-bit load, 16 for a vec4, ...).
    pub width: u8,
    /// Byte addresses of the *active* lanes (1..=32 entries).
    pub addrs: Vec<u64>,
}

impl MemAccess {
    /// A fully-coalesced unit-stride access: `lanes` consecutive lanes each
    /// touching `width` bytes starting at `base`.
    pub fn coalesced(space: Space, class: DataClass, width: u8, base: u64, lanes: usize) -> Self {
        assert!((1..=WARP_SIZE).contains(&lanes), "lanes must be 1..=32");
        MemAccess {
            space,
            class,
            width,
            addrs: (0..lanes as u64).map(|l| base + l * width as u64).collect(),
        }
    }

    /// An access with explicit per-lane addresses.
    pub fn scattered(space: Space, class: DataClass, width: u8, addrs: Vec<u64>) -> Self {
        assert!(!addrs.is_empty() && addrs.len() <= WARP_SIZE);
        MemAccess {
            space,
            class,
            width,
            addrs,
        }
    }

    /// Distinct aligned chunks of `chunk` bytes touched by this access.
    /// With `chunk = 32` this yields the sector count the coalescer produces;
    /// with `chunk = 128` the cache-line count.
    pub fn distinct_chunks(&self, chunk: u64) -> Vec<u64> {
        let mut v = Vec::new();
        self.distinct_chunks_into(chunk, &mut v);
        v
    }

    /// Allocation-free [`Self::distinct_chunks`]: clears `out` and fills it
    /// with the distinct chunk ids. Hot paths (functional cache warming
    /// replays every memory instruction of a skipped region) reuse one
    /// scratch vector across millions of calls.
    pub fn distinct_chunks_into(&self, chunk: u64, out: &mut Vec<u64>) {
        out.clear();
        for &a in &self.addrs {
            let first = a / chunk;
            let last = (a + self.width as u64 - 1) / chunk;
            out.extend(first..=last);
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// One dynamic warp instruction.
///
/// `dst`/`srcs` express the register dependencies the scoreboard enforces.
/// Memory instructions additionally carry a [`MemAccess`].
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Opcode class.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Source registers (up to [`MAX_SRCS`]).
    pub srcs: [Option<Reg>; MAX_SRCS],
    /// Memory behaviour for `Ld`/`St` opcodes.
    pub mem: Option<MemAccess>,
}

impl Instr {
    /// An ALU-class instruction `dst = op(srcs...)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory opcode or more than [`MAX_SRCS`] sources
    /// are given.
    pub fn alu(op: Op, dst: Reg, srcs: &[Reg]) -> Self {
        assert!(!op.is_mem(), "use Instr::load/Instr::store for memory ops");
        assert!(srcs.len() <= MAX_SRCS, "at most {MAX_SRCS} sources");
        let mut s = [None; MAX_SRCS];
        for (slot, &r) in s.iter_mut().zip(srcs) {
            *slot = Some(r);
        }
        Instr {
            op,
            dst: Some(dst),
            srcs: s,
            mem: None,
        }
    }

    /// A load writing `dst`.
    pub fn load(dst: Reg, mem: MemAccess) -> Self {
        Instr {
            op: Op::Ld(mem.space),
            dst: Some(dst),
            srcs: [None; MAX_SRCS],
            mem: Some(mem),
        }
    }

    /// A store reading `src`.
    pub fn store(src: Reg, mem: MemAccess) -> Self {
        Instr {
            op: Op::St(mem.space),
            dst: None,
            srcs: [Some(src), None, None],
            mem: Some(mem),
        }
    }

    /// A CTA barrier.
    pub fn bar() -> Self {
        Instr {
            op: Op::Bar,
            dst: None,
            srcs: [None; MAX_SRCS],
            mem: None,
        }
    }

    /// A branch (control-flow latency marker).
    pub fn branch() -> Self {
        Instr {
            op: Op::Branch,
            dst: None,
            srcs: [None; MAX_SRCS],
            mem: None,
        }
    }

    /// The warp-terminating instruction.
    pub fn exit() -> Self {
        Instr {
            op: Op::Exit,
            dst: None,
            srcs: [None; MAX_SRCS],
            mem: None,
        }
    }

    /// Iterator over the source registers that are present.
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_access_covers_consecutive_addresses() {
        let m = MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x100, 32);
        assert_eq!(m.addrs.len(), 32);
        assert_eq!(m.addrs[0], 0x100);
        assert_eq!(m.addrs[31], 0x100 + 31 * 4);
    }

    #[test]
    fn coalesced_32b_lanes_touch_one_line() {
        let m = MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x0, 32);
        assert_eq!(m.distinct_chunks(128), vec![0]);
        assert_eq!(m.distinct_chunks(32), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unaligned_wide_access_straddles_chunks() {
        // A 16-byte access starting 8 bytes before a 32B boundary straddles
        // two sectors.
        let m = MemAccess::scattered(Space::Global, DataClass::Compute, 16, vec![24]);
        assert_eq!(m.distinct_chunks(32), vec![0, 1]);
    }

    #[test]
    fn scattered_access_distinct_lines() {
        let m = MemAccess::scattered(Space::Tex, DataClass::Texture, 4, vec![0, 128, 256, 130]);
        assert_eq!(m.distinct_chunks(128), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "lanes must be 1..=32")]
    fn coalesced_rejects_zero_lanes() {
        let _ = MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 0);
    }

    #[test]
    fn alu_builder_records_deps() {
        let i = Instr::alu(Op::FpFma, Reg(5), &[Reg(1), Reg(2), Reg(3)]);
        assert_eq!(i.dst, Some(Reg(5)));
        assert_eq!(
            i.src_regs().collect::<Vec<_>>(),
            vec![Reg(1), Reg(2), Reg(3)]
        );
        assert!(i.mem.is_none());
    }

    #[test]
    #[should_panic(expected = "memory ops")]
    fn alu_builder_rejects_mem_opcode() {
        let _ = Instr::alu(Op::Ld(Space::Global), Reg(0), &[]);
    }

    #[test]
    fn load_store_builders_tag_space() {
        let ld = Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Tex, DataClass::Texture, 4, 0, 32),
        );
        assert_eq!(ld.op, Op::Ld(Space::Tex));
        assert!(ld.op.is_load());
        let st = Instr::store(
            Reg(1),
            MemAccess::coalesced(Space::Global, DataClass::Pipeline, 4, 0, 32),
        );
        assert_eq!(st.op, Op::St(Space::Global));
        assert!(!st.op.is_load());
        assert!(st.op.is_mem());
    }

    #[test]
    fn shared_space_is_not_cached() {
        assert!(!Space::Shared.is_cached());
        assert!(Space::Global.is_cached());
        assert!(Space::Tex.is_cached());
        assert!(Space::Local.is_cached());
    }

    #[test]
    fn data_class_labels_are_distinct() {
        let labels: Vec<_> = DataClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["texture", "pipeline", "compute"]);
    }
}
