//! Warp, CTA and kernel trace containers.

use crate::isa::{Instr, WARP_SIZE};

/// The dynamic instruction stream of one warp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpTrace {
    instrs: Vec<Instr>,
}

impl WarpTrace {
    /// An empty warp trace.
    pub fn new() -> Self {
        WarpTrace::default()
    }

    /// Append one instruction.
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// Append many instructions.
    pub fn extend(&mut self, it: impl IntoIterator<Item = Instr>) {
        self.instrs.extend(it);
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<&Instr> {
        self.instrs.get(idx)
    }

    /// Iterate over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// Ensure the warp ends with an `Exit`, appending one if missing.
    pub fn seal(&mut self) {
        if !matches!(self.instrs.last().map(|i| i.op), Some(crate::Op::Exit)) {
            self.instrs.push(Instr::exit());
        }
    }
}

impl FromIterator<Instr> for WarpTrace {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        WarpTrace {
            instrs: iter.into_iter().collect(),
        }
    }
}

/// The trace of one cooperative thread array (thread block): one
/// [`WarpTrace`] per warp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CtaTrace {
    /// Per-warp traces; `warps.len() * 32 >= threads` of the launch.
    pub warps: Vec<WarpTrace>,
}

impl CtaTrace {
    /// A CTA trace from per-warp instruction streams.
    pub fn new(warps: Vec<WarpTrace>) -> Self {
        CtaTrace { warps }
    }

    /// Number of warps.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Total dynamic instructions over all warps.
    pub fn instr_count(&self) -> usize {
        self.warps.iter().map(WarpTrace::len).sum()
    }
}

/// A complete kernel trace: launch geometry, per-thread resource usage and
/// the per-CTA instruction streams.
///
/// Graphics work is expressed as kernels too: each vertex-shading batch and
/// each fragment-shading tile group becomes a `KernelTrace`, which is what
/// lets the timing model treat rendering and CUDA uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    /// Human-readable kernel name (e.g. `"vs_batch_17"`, `"vio_fast9"`).
    pub name: String,
    /// Threads per CTA.
    pub block_threads: u32,
    /// Architectural registers per thread (occupancy limiter).
    pub regs_per_thread: u32,
    /// Shared memory bytes per CTA (occupancy limiter).
    pub smem_per_cta: u32,
    /// One trace per CTA; the grid size is `ctas.len()`.
    pub ctas: Vec<CtaTrace>,
}

impl KernelTrace {
    /// A kernel trace. `block_threads` is clamped up to one full warp.
    ///
    /// # Panics
    ///
    /// Panics if any CTA has more warps than `block_threads` implies.
    pub fn new(
        name: impl Into<String>,
        block_threads: u32,
        regs_per_thread: u32,
        smem_per_cta: u32,
        ctas: Vec<CtaTrace>,
    ) -> Self {
        let block_threads = block_threads.max(WARP_SIZE as u32);
        let max_warps = block_threads.div_ceil(WARP_SIZE as u32) as usize;
        for (i, c) in ctas.iter().enumerate() {
            assert!(
                c.warp_count() <= max_warps,
                "cta {i} has {} warps but block allows {max_warps}",
                c.warp_count()
            );
        }
        KernelTrace {
            name: name.into(),
            block_threads,
            regs_per_thread,
            smem_per_cta,
            ctas,
        }
    }

    /// Grid size in CTAs.
    pub fn grid(&self) -> usize {
        self.ctas.len()
    }

    /// Warps per CTA implied by the launch geometry.
    pub fn warps_per_cta(&self) -> u32 {
        self.block_threads.div_ceil(WARP_SIZE as u32)
    }

    /// Registers required by one CTA.
    pub fn regs_per_cta(&self) -> u32 {
        // Register files allocate per warp at warp granularity.
        self.warps_per_cta() * WARP_SIZE as u32 * self.regs_per_thread
    }

    /// Total dynamic instruction count.
    pub fn instr_count(&self) -> usize {
        self.ctas.iter().map(CtaTrace::instr_count).sum()
    }

    /// Total threads launched (grid × block), the quantity hardware
    /// profilers report for shader invocation counts.
    pub fn threads_launched(&self) -> u64 {
        self.grid() as u64 * self.block_threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Op, Reg};

    fn warp(n: usize) -> WarpTrace {
        let mut w = WarpTrace::new();
        for _ in 0..n {
            w.push(Instr::alu(Op::IntAlu, Reg(0), &[]));
        }
        w.seal();
        w
    }

    #[test]
    fn seal_appends_exit_once() {
        let mut w = warp(3);
        assert_eq!(w.len(), 4);
        w.seal();
        assert_eq!(w.len(), 4, "seal must be idempotent");
        assert_eq!(w.get(3).unwrap().op, Op::Exit);
    }

    #[test]
    fn cta_counts_aggregate() {
        let c = CtaTrace::new(vec![warp(2), warp(5)]);
        assert_eq!(c.warp_count(), 2);
        assert_eq!(c.instr_count(), 3 + 6);
    }

    #[test]
    fn kernel_geometry() {
        let k = KernelTrace::new("k", 96, 32, 0, vec![CtaTrace::new(vec![warp(1); 3]); 4]);
        assert_eq!(k.grid(), 4);
        assert_eq!(k.warps_per_cta(), 3);
        assert_eq!(k.regs_per_cta(), 3 * 32 * 32);
        assert_eq!(k.threads_launched(), 4 * 96);
    }

    #[test]
    fn kernel_clamps_tiny_blocks_to_a_warp() {
        let k = KernelTrace::new("k", 1, 16, 0, vec![]);
        assert_eq!(k.block_threads, 32);
        assert_eq!(k.warps_per_cta(), 1);
    }

    #[test]
    #[should_panic(expected = "warps")]
    fn kernel_rejects_overfull_cta() {
        let _ = KernelTrace::new("k", 32, 16, 0, vec![CtaTrace::new(vec![warp(1), warp(1)])]);
    }

    #[test]
    fn warp_trace_from_iterator() {
        let w: WarpTrace = (0..5).map(|_| Instr::branch()).collect();
        assert_eq!(w.len(), 5);
    }
}
