//! Trace ISA and stream model for the CRISP GPU simulator.
//!
//! CRISP is trace-driven, like Accel-Sim: frontends (the functional graphics
//! pipeline in `crisp-gfx`, the compute-workload generators in `crisp-scenes`)
//! produce instruction traces, and the timing model (`crisp-sim`) replays them
//! cycle by cycle. This crate defines the interchange format.
//!
//! A trace records, per warp, the dynamic instruction stream with
//! register-level dependencies and per-lane memory addresses — exactly the
//! information Accel-Sim's SASS tracer captures on silicon, and all that a
//! cycle-level timing model needs. Traces are organised as
//! [`Instr`] → [`WarpTrace`] → [`CtaTrace`] → [`KernelTrace`] →
//! [`Stream`] → [`TraceBundle`].
//!
//! # Example
//!
//! ```
//! use crisp_trace::{Instr, Op, Reg, Space, DataClass, MemAccess, WarpTrace};
//!
//! let mut w = WarpTrace::new();
//! // A global load into r1 followed by a dependent FMA.
//! w.push(Instr::load(
//!     Reg(1),
//!     MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x1000, 32),
//! ));
//! w.push(Instr::alu(Op::FpFma, Reg(2), &[Reg(1), Reg(2)]));
//! w.push(Instr::exit());
//! assert_eq!(w.len(), 3);
//! ```

mod analysis;
pub mod codec;
mod isa;
mod kernel;
mod source;
mod stream;
pub mod validate;

pub use analysis::{
    ClassFootprint, InstrMix, ReuseHistogram, TexLinesHistogram, LINE_BYTES, SECTOR_BYTES,
};
pub use isa::{DataClass, Instr, MemAccess, Op, Reg, Space, MAX_SRCS, WARP_SIZE};
pub use kernel::{CtaTrace, KernelTrace, WarpTrace};
pub use source::{
    cta_resident_cost, CommandMeta, KernelId, KernelInfo, StreamMeta, TraceInput, TraceSource,
    TraceStats,
};
pub use stream::{Command, Stream, StreamId, StreamKind, TraceBundle};
pub use validate::{
    validate_bundle, validate_kernel, validate_source, TraceError, TraceErrorKind, TraceErrorSite,
    SCOREBOARD_REGS,
};
