//! Streaming trace sources: demand-paged access to CRSP containers.
//!
//! A [`TraceSource`] is the unified entry point for trace input. It exposes
//! the *shape* of a bundle — streams, commands, launch geometry — eagerly,
//! but decodes per-CTA instruction payloads lazily: a CTA is paged in on
//! first [`fetch_cta`](TraceSource::fetch_cta) and dropped again on
//! [`release_cta`](TraceSource::release_cta) (the simulator releases when
//! the CTA retires). For a version-2 container this keeps peak memory at
//! the *live window* of the trace instead of the whole file; version-1
//! files and in-memory bundles are held fully materialized behind the same
//! API — running the same fetch/release accounting — so consumers never
//! branch on the input kind and statistics match across backings.
//!
//! Construction goes through [`TraceInput`], which accepts an in-memory
//! [`TraceBundle`], a filesystem path, or any `Read + Seek` reader:
//!
//! ```
//! use crisp_trace::{codec, CtaTrace, Instr, KernelTrace, Op, Reg, Stream,
//!                   StreamId, StreamKind, TraceBundle, TraceInput, WarpTrace};
//!
//! let mut w = WarpTrace::new();
//! w.push(Instr::alu(Op::FpFma, Reg(1), &[]));
//! w.seal();
//! let k = KernelTrace::new("k", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
//! let mut s = Stream::new(StreamId(0), StreamKind::Compute);
//! s.launch(k);
//! let bundle = TraceBundle::from_streams(vec![s]);
//!
//! // Serialize, then stream it back one CTA at a time.
//! let mut bytes = Vec::new();
//! codec::write_bundle(&bundle, &mut bytes)?;
//! let mut src = TraceInput::reader(std::io::Cursor::new(bytes)).open()?;
//! let kernel = match &src.streams()[0].commands[0] {
//!     crisp_trace::CommandMeta::Launch { kernel, .. } => *kernel,
//!     _ => unreachable!(),
//! };
//! let cta = src.fetch_cta(kernel, 0)?;
//! assert_eq!(cta.warps.len(), 1);
//! src.release_cta(kernel, 0);
//! assert_eq!(src.stats().resident_ctas, 0);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::codec::{self, DirCmd, DirStream};
use crate::kernel::{CtaTrace, KernelTrace};
use crate::stream::{Command, Stream, StreamId, StreamKind, TraceBundle};
use crate::WARP_SIZE;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A byte source a [`TraceSource`] can stream from: readable, seekable, and
/// movable across threads. Blanket-implemented; `io::Cursor<Vec<u8>>`,
/// `BufReader<File>`, and friends all qualify.
pub trait TraceRead: Read + Seek + Send {}

impl<T: Read + Seek + Send> TraceRead for T {}

/// Identifier of one kernel launch within a [`TraceSource`] — the position
/// of the launch in the container's directory (streams in stored order,
/// commands in stream order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u32);

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel{}", self.0)
    }
}

/// Launch geometry and per-thread resource usage of one kernel — everything
/// the scheduler needs to place CTAs, without the instruction payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Human-readable kernel name from the trace.
    pub name: String,
    /// Threads per CTA (clamped up to one full warp, like
    /// [`KernelTrace::new`]).
    pub block_threads: u32,
    /// Architectural registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory bytes per CTA.
    pub smem_per_cta: u32,
    /// Grid size in CTAs.
    pub grid: usize,
}

impl KernelInfo {
    /// The info of a materialized kernel trace.
    pub fn of(k: &KernelTrace) -> Self {
        KernelInfo {
            name: k.name.clone(),
            block_threads: k.block_threads,
            regs_per_thread: k.regs_per_thread,
            smem_per_cta: k.smem_per_cta,
            grid: k.grid(),
        }
    }

    /// Warps per CTA implied by the launch geometry.
    pub fn warps_per_cta(&self) -> u32 {
        self.block_threads.div_ceil(WARP_SIZE as u32)
    }

    /// Registers required by one CTA (allocated at warp granularity).
    pub fn regs_per_cta(&self) -> u32 {
        self.warps_per_cta() * WARP_SIZE as u32 * self.regs_per_thread
    }

    /// Total threads launched (grid × block).
    pub fn threads_launched(&self) -> u64 {
        self.grid as u64 * self.block_threads as u64
    }
}

/// One command of a stream, with kernel launches reduced to their metadata.
#[derive(Debug, Clone)]
pub enum CommandMeta {
    /// A kernel launch; fetch its CTAs from the owning [`TraceSource`].
    Launch {
        /// Handle for [`TraceSource::fetch_cta`] and friends.
        kernel: KernelId,
        /// Launch geometry, shared with the source's directory.
        info: Arc<KernelInfo>,
    },
    /// A boundary marker (drawcall or API event).
    Marker(String),
}

/// The command list of one stream, mirroring [`Stream`] without payloads.
#[derive(Debug, Clone)]
pub struct StreamMeta {
    /// Stream identifier; unique within the source.
    pub id: StreamId,
    /// Work classification.
    pub kind: StreamKind,
    /// Ordered commands.
    pub commands: Vec<CommandMeta>,
}

impl StreamMeta {
    /// Number of kernel launches in the stream.
    pub fn kernel_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, CommandMeta::Launch { .. }))
            .count()
    }
}

/// Residency and decode accounting of a [`TraceSource`].
///
/// The counters track the *logical* fetch/release window: every backing
/// runs the same bookkeeping on [`fetch_cta`](TraceSource::fetch_cta) and
/// [`release_cta`](TraceSource::release_cta), so a materialized source —
/// which physically keeps the whole bundle in memory — reports exactly the
/// window a streaming run over the same trace would keep. That makes
/// simulation results (and their telemetry exports) bit-identical across
/// backings, and keeps resumed runs bit-identical after checkpoint restore.
///
/// `resident_bytes` is a deterministic in-memory estimate of the window
/// (instruction count × instruction size plus per-warp/CTA overhead); see
/// [`cta_resident_cost`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// CTAs currently decoded and held in memory.
    pub resident_ctas: u64,
    /// Estimated bytes of decoded trace currently held in memory.
    pub resident_bytes: u64,
    /// High-water mark of `resident_ctas`.
    pub peak_resident_ctas: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: u64,
    /// Total CTA decodes performed (a CTA fetched, released, and fetched
    /// again counts twice).
    pub ctas_decoded: u64,
    /// Estimated bytes decoded in total, in the same units as
    /// `resident_bytes`.
    pub bytes_decoded: u64,
}

impl TraceStats {
    /// One CTA entered the resident window.
    fn on_decode(&mut self, cost: u64) {
        self.resident_ctas += 1;
        self.resident_bytes += cost;
        self.ctas_decoded += 1;
        self.bytes_decoded += cost;
        self.peak_resident_ctas = self.peak_resident_ctas.max(self.resident_ctas);
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
    }

    /// One CTA left the resident window.
    fn on_release(&mut self, cost: u64) {
        self.resident_ctas -= 1;
        self.resident_bytes -= cost;
    }
}

/// Deterministic in-memory cost estimate of one decoded CTA — the unit of
/// [`TraceStats::resident_bytes`]. Exposed so tools can compute a
/// materialized baseline (the sum over every CTA in a bundle) to compare a
/// streaming run's peak window against.
pub fn cta_resident_cost(cta: &CtaTrace) -> u64 {
    cta_cost(cta)
}

/// Deterministic in-memory cost estimate of one decoded CTA.
fn cta_cost(cta: &CtaTrace) -> u64 {
    use std::mem::size_of;
    let mut bytes = size_of::<CtaTrace>() as u64;
    for w in &cta.warps {
        bytes += size_of::<crate::WarpTrace>() as u64;
        bytes += (w.len() * size_of::<crate::Instr>()) as u64;
        for i in w.iter() {
            if let Some(m) = &i.mem {
                bytes += (m.addrs.len() * size_of::<u64>()) as u64;
            }
        }
    }
    bytes
}

/// Any trace input the simulator accepts: an in-memory bundle, a path to a
/// CRSP file, or an arbitrary seekable reader. Every form opens into the
/// same [`TraceSource`]; files and readers carrying a version-2 container
/// stream (demand-page CTAs), everything else materializes.
pub enum TraceInput {
    /// An already-materialized bundle.
    Bundle(TraceBundle),
    /// A CRSP container on the filesystem.
    Path(PathBuf),
    /// A seekable reader over a CRSP container.
    Reader(Box<dyn TraceRead>),
}

impl std::fmt::Debug for TraceInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceInput::Bundle(b) => f.debug_tuple("Bundle").field(b).finish(),
            TraceInput::Path(p) => f.debug_tuple("Path").field(p).finish(),
            TraceInput::Reader(_) => f.write_str("Reader(..)"),
        }
    }
}

impl From<TraceBundle> for TraceInput {
    fn from(b: TraceBundle) -> Self {
        TraceInput::Bundle(b)
    }
}

impl From<PathBuf> for TraceInput {
    fn from(p: PathBuf) -> Self {
        TraceInput::Path(p)
    }
}

impl From<&Path> for TraceInput {
    fn from(p: &Path) -> Self {
        TraceInput::Path(p.to_path_buf())
    }
}

impl From<&str> for TraceInput {
    fn from(p: &str) -> Self {
        TraceInput::Path(PathBuf::from(p))
    }
}

impl From<String> for TraceInput {
    fn from(p: String) -> Self {
        TraceInput::Path(PathBuf::from(p))
    }
}

impl TraceInput {
    /// Wrap a seekable reader (e.g. an `io::Cursor` over container bytes).
    pub fn reader(r: impl Read + Seek + Send + 'static) -> Self {
        TraceInput::Reader(Box::new(r))
    }

    /// Open the input as a [`TraceSource`]. Bundles materialize; paths and
    /// readers are sniffed: version-2 containers stream, version-1 files go
    /// through the compatibility scan and materialize.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, and returns `InvalidData` for malformed
    /// containers — including a corrupt CTA index (spans out of bounds,
    /// overlapping, or not covering the payload).
    pub fn open(self) -> io::Result<TraceSource> {
        match self {
            TraceInput::Bundle(b) => Ok(TraceSource::from_bundle(b)),
            TraceInput::Path(p) => {
                let f = std::fs::File::open(&p)?;
                TraceSource::open_reader(Box::new(io::BufReader::new(f)), Provenance::Path(p))
            }
            TraceInput::Reader(r) => TraceSource::open_reader(r, Provenance::Reader),
        }
    }
}

/// Where a source came from, for re-opening at checkpoint restore.
#[derive(Debug)]
enum Provenance {
    /// Opened from a filesystem path (re-open by path).
    Path(PathBuf),
    /// Opened from a caller-supplied reader (copy the raw container bytes).
    Reader,
    /// Built from an in-memory bundle (re-encode on demand).
    Ephemeral,
}

enum CtaStore {
    /// Fully materialized (bundle-backed or version-1 compat). `window`
    /// tracks which CTAs are *logically* fetched so accounting matches a
    /// streaming source even though the `Arc`s never drop.
    Loaded {
        ctas: Vec<Arc<CtaTrace>>,
        window: BTreeSet<usize>,
    },
    /// Demand-paged: per-CTA payload spans plus the resident window.
    Lazy {
        spans: Vec<(u64, u64)>,
        resident: BTreeMap<usize, Arc<CtaTrace>>,
    },
}

struct KernelEntry {
    stream: StreamId,
    info: Arc<KernelInfo>,
    ctas: CtaStore,
}

enum Backing {
    /// No reader needed; every CTA lives in its `CtaStore::Loaded`.
    Materialized,
    /// CTA blobs are decoded out of `reader` on demand.
    Streaming {
        reader: Box<dyn TraceRead>,
        payload_start: u64,
    },
}

/// Demand-paged access to a trace: stream/kernel metadata up front, per-CTA
/// instruction payloads on [`fetch_cta`](Self::fetch_cta). See the module
/// docs for the lifecycle.
pub struct TraceSource {
    streams: Vec<StreamMeta>,
    kernels: Vec<KernelEntry>,
    backing: Backing,
    provenance: Provenance,
    stats: TraceStats,
}

impl std::fmt::Debug for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSource")
            .field("streams", &self.streams.len())
            .field("kernels", &self.kernels.len())
            .field("streaming", &self.is_streaming())
            .field("stats", &self.stats)
            .finish()
    }
}

impl TraceSource {
    /// A fully materialized source over an in-memory bundle. Every CTA is
    /// physically in memory for the lifetime of the source, but the
    /// [`stats`](Self::stats) accounting is *logical*: fetch and release
    /// move CTAs through the same window a streaming source would keep, so
    /// the counters (and everything derived from them) are bit-identical
    /// across backings.
    pub fn from_bundle(bundle: TraceBundle) -> Self {
        let mut streams = Vec::with_capacity(bundle.streams.len());
        let mut kernels: Vec<KernelEntry> = Vec::new();
        for s in bundle.streams {
            let mut commands = Vec::with_capacity(s.commands.len());
            for c in s.commands {
                match c {
                    Command::Launch(k) => {
                        let id = KernelId(kernels.len() as u32);
                        let info = Arc::new(KernelInfo::of(&k));
                        let ctas: Vec<Arc<CtaTrace>> = k.ctas.into_iter().map(Arc::new).collect();
                        kernels.push(KernelEntry {
                            stream: s.id,
                            info: info.clone(),
                            ctas: CtaStore::Loaded {
                                ctas,
                                window: BTreeSet::new(),
                            },
                        });
                        commands.push(CommandMeta::Launch { kernel: id, info });
                    }
                    Command::Marker(m) => commands.push(CommandMeta::Marker(m)),
                }
            }
            streams.push(StreamMeta {
                id: s.id,
                kind: s.kind,
                commands,
            });
        }
        TraceSource {
            streams,
            kernels,
            backing: Backing::Materialized,
            provenance: Provenance::Ephemeral,
            stats: TraceStats::default(),
        }
    }

    /// Open a container behind a seekable reader: sniff the version, build
    /// the directory, and either stream (v2) or materialize (v1 compat).
    fn open_reader(
        mut reader: Box<dyn TraceRead>,
        provenance: Provenance,
    ) -> io::Result<TraceSource> {
        reader.seek(SeekFrom::Start(0))?;
        codec::check_magic(&mut reader, codec::MAGIC, "CRSP trace")?;
        match codec::read_version(&mut reader)? {
            codec::VERSION_V1 => {
                // Compatibility scan: old files have no index; decode whole.
                let bundle = codec::read_bundle_rest_v1(&mut reader)?;
                let mut src = TraceSource::from_bundle(bundle);
                src.provenance = provenance;
                Ok(src)
            }
            codec::VERSION_V2 => {
                let (dir, _payload_len) = codec::read_directory_v2(&mut reader)?;
                let payload_start = reader.stream_position()?;
                Ok(TraceSource::from_directory(
                    dir,
                    reader,
                    payload_start,
                    provenance,
                ))
            }
            found => Err(codec::unsupported_version(found)),
        }
    }

    fn from_directory(
        dir: Vec<DirStream>,
        reader: Box<dyn TraceRead>,
        payload_start: u64,
        provenance: Provenance,
    ) -> TraceSource {
        let mut streams = Vec::with_capacity(dir.len());
        let mut kernels: Vec<KernelEntry> = Vec::new();
        for s in dir {
            let mut commands = Vec::with_capacity(s.cmds.len());
            for c in s.cmds {
                match c {
                    DirCmd::Launch(k) => {
                        let id = KernelId(kernels.len() as u32);
                        let info = Arc::new(KernelInfo {
                            name: k.name,
                            block_threads: k.block_threads.max(WARP_SIZE as u32),
                            regs_per_thread: k.regs_per_thread,
                            smem_per_cta: k.smem_per_cta,
                            grid: k.spans.len(),
                        });
                        kernels.push(KernelEntry {
                            stream: s.id,
                            info: info.clone(),
                            ctas: CtaStore::Lazy {
                                spans: k.spans,
                                resident: BTreeMap::new(),
                            },
                        });
                        commands.push(CommandMeta::Launch { kernel: id, info });
                    }
                    DirCmd::Marker(m) => commands.push(CommandMeta::Marker(m)),
                }
            }
            streams.push(StreamMeta {
                id: s.id,
                kind: s.kind,
                commands,
            });
        }
        TraceSource {
            streams,
            kernels,
            backing: Backing::Streaming {
                reader,
                payload_start,
            },
            provenance,
            stats: TraceStats::default(),
        }
    }

    /// Stream metadata in container order.
    pub fn streams(&self) -> &[StreamMeta] {
        &self.streams
    }

    /// Number of kernel launches across all streams.
    pub fn n_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Launch geometry of `kernel`.
    pub fn kernel_info(&self, kernel: KernelId) -> Option<&Arc<KernelInfo>> {
        self.kernels.get(kernel.0 as usize).map(|k| &k.info)
    }

    /// The stream `kernel` was launched on.
    pub fn kernel_stream(&self, kernel: KernelId) -> Option<StreamId> {
        self.kernels.get(kernel.0 as usize).map(|k| k.stream)
    }

    /// Whether CTAs are demand-paged (version-2 file/reader backing) rather
    /// than fully materialized.
    pub fn is_streaming(&self) -> bool {
        matches!(self.backing, Backing::Streaming { .. })
    }

    /// The path this source was opened from, if any.
    pub fn path(&self) -> Option<&Path> {
        match &self.provenance {
            Provenance::Path(p) => Some(p),
            _ => None,
        }
    }

    /// Residency and decode accounting so far.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Overwrite the accounting wholesale — checkpoint restore uses this to
    /// keep resumed statistics bit-identical to an uninterrupted run.
    #[doc(hidden)]
    pub fn set_stats(&mut self, stats: TraceStats) {
        self.stats = stats;
    }

    fn entry(&self, kernel: KernelId) -> io::Result<&KernelEntry> {
        self.kernels
            .get(kernel.0 as usize)
            .ok_or_else(|| bad(format!("{kernel} is not in this trace source")))
    }

    fn is_resident(&self, kernel: KernelId, cta_index: usize) -> bool {
        match self.kernels.get(kernel.0 as usize).map(|k| &k.ctas) {
            Some(CtaStore::Loaded { window, .. }) => window.contains(&cta_index),
            Some(CtaStore::Lazy { resident, .. }) => resident.contains_key(&cta_index),
            None => false,
        }
    }

    /// Page in one CTA's instruction streams. On a streaming source the
    /// first fetch decodes the blob out of the container; while the CTA
    /// stays resident, further fetches return the same shared trace at no
    /// cost. Materialized sources return the already-loaded trace, but run
    /// the same [`stats`](Self::stats) bookkeeping, so accounting is
    /// identical whichever backing serves the fetch.
    ///
    /// # Errors
    ///
    /// `InvalidData` for unknown kernel/CTA indices or a corrupt blob, and
    /// I/O errors from the underlying reader.
    pub fn fetch_cta(&mut self, kernel: KernelId, cta_index: usize) -> io::Result<Arc<CtaTrace>> {
        let entry = self
            .kernels
            .get_mut(kernel.0 as usize)
            .ok_or_else(|| bad(format!("{kernel} is not in this trace source")))?;
        let max_warps = codec::max_warps_of(entry.info.block_threads);
        match &mut entry.ctas {
            CtaStore::Loaded { ctas, window } => {
                let arc = ctas.get(cta_index).cloned().ok_or_else(|| {
                    bad(format!(
                        "cta {cta_index} out of range for {kernel} (grid {})",
                        ctas.len()
                    ))
                })?;
                if window.insert(cta_index) {
                    self.stats.on_decode(cta_cost(&arc));
                }
                Ok(arc)
            }
            CtaStore::Lazy { spans, resident } => {
                if let Some(a) = resident.get(&cta_index) {
                    return Ok(a.clone());
                }
                let &(off, len) = spans.get(cta_index).ok_or_else(|| {
                    bad(format!(
                        "cta {cta_index} out of range for {kernel} (grid {})",
                        spans.len()
                    ))
                })?;
                let Backing::Streaming {
                    reader,
                    payload_start,
                } = &mut self.backing
                else {
                    return Err(bad("lazy CTA store without a streaming backing".into()));
                };
                reader.seek(SeekFrom::Start(*payload_start + off))?;
                let mut lim = (&mut **reader).take(len);
                let blob = codec::read_cta_blob(&mut lim, max_warps)?;
                if lim.limit() != 0 {
                    return Err(bad("CTA blob shorter than its indexed span".into()));
                }
                let arc = Arc::new(blob);
                resident.insert(cta_index, arc.clone());
                self.stats.on_decode(cta_cost(&arc));
                Ok(arc)
            }
        }
    }

    /// Drop a CTA from the resident window. A no-op for CTAs that were
    /// never fetched (or already released). Streaming sources free the
    /// decoded trace; materialized sources only shrink the logical window,
    /// keeping accounting identical across backings. Callers still holding
    /// the `Arc` keep their copy; the source just stops caching it.
    pub fn release_cta(&mut self, kernel: KernelId, cta_index: usize) {
        if let Some(entry) = self.kernels.get_mut(kernel.0 as usize) {
            match &mut entry.ctas {
                CtaStore::Loaded { ctas, window } => {
                    if window.remove(&cta_index) {
                        self.stats.on_release(cta_cost(&ctas[cta_index]));
                    }
                }
                CtaStore::Lazy { resident, .. } => {
                    if let Some(a) = resident.remove(&cta_index) {
                        self.stats.on_release(cta_cost(&a));
                    }
                }
            }
        }
    }

    /// Materialize one kernel as a [`KernelTrace`], fetching each CTA and
    /// releasing the ones that were not already resident — the bounded-
    /// memory building block behind incremental validation and analysis.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`fetch_cta`](Self::fetch_cta).
    pub fn materialize_kernel(&mut self, kernel: KernelId) -> io::Result<KernelTrace> {
        let info = self.entry(kernel)?.info.clone();
        let mut ctas = Vec::with_capacity(info.grid);
        for i in 0..info.grid {
            let was_resident = self.is_resident(kernel, i);
            let a = self.fetch_cta(kernel, i)?;
            ctas.push((*a).clone());
            if !was_resident {
                self.release_cta(kernel, i);
            }
        }
        // Construct the struct directly rather than through
        // `KernelTrace::new`: a malformed source (e.g. a bundle whose CTA
        // has more warps than the block allows) must round-trip so the
        // validator can *report* the defect — paging never panics.
        Ok(KernelTrace {
            name: info.name.clone(),
            block_threads: info.block_threads,
            regs_per_thread: info.regs_per_thread,
            smem_per_cta: info.smem_per_cta,
            ctas,
        })
    }

    /// Materialize the whole source as a [`TraceBundle`]. Streaming sources
    /// decode every CTA (releasing non-resident ones afterwards), so this
    /// costs the full-bundle memory the streaming path otherwise avoids.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`fetch_cta`](Self::fetch_cta).
    pub fn to_bundle(&mut self) -> io::Result<TraceBundle> {
        let metas = self.streams.clone();
        let mut streams = Vec::with_capacity(metas.len());
        for m in metas {
            let mut s = Stream::new(m.id, m.kind);
            for c in m.commands {
                match c {
                    CommandMeta::Launch { kernel, .. } => {
                        s.launch(self.materialize_kernel(kernel)?);
                    }
                    CommandMeta::Marker(l) => {
                        s.marker(l);
                    }
                }
            }
            streams.push(s);
        }
        Ok(TraceBundle::from_streams(streams))
    }

    /// The raw version-2 container bytes for this source: streaming sources
    /// copy their backing bytes, materialized sources re-encode. Checkpoints
    /// embed this so a resumed run needs no external files.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing reader or the encoder.
    pub fn container_bytes(&mut self) -> io::Result<Vec<u8>> {
        if let Backing::Streaming { reader, .. } = &mut self.backing {
            reader.seek(SeekFrom::Start(0))?;
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            return Ok(buf);
        }
        let b = self.to_bundle()?;
        let mut buf = Vec::new();
        codec::write_bundle(&b, &mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{DataClass, Instr, MemAccess, Op, Reg, Space};
    use crate::kernel::WarpTrace;

    fn kernel(name: &str, n_instr: usize, warps: usize, ctas: usize) -> KernelTrace {
        let mut w = WarpTrace::new();
        for i in 0..n_instr {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) as u16 + 1), &[]));
        }
        w.push(Instr::load(
            Reg(9),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x1000, 32),
        ));
        w.seal();
        let cta = CtaTrace::new(vec![w; warps]);
        KernelTrace::new(name, 32 * warps as u32, 16, 0, vec![cta; ctas])
    }

    fn bundle() -> TraceBundle {
        let mut g = Stream::new(StreamId(0), StreamKind::Graphics);
        g.marker("draw0").launch(kernel("vs", 10, 2, 3));
        let mut c = Stream::new(StreamId(1), StreamKind::Compute);
        c.launch(kernel("k0", 20, 1, 2))
            .launch(kernel("k1", 5, 1, 1));
        TraceBundle::from_streams(vec![g, c])
    }

    fn streaming_source() -> TraceSource {
        let mut bytes = Vec::new();
        codec::write_bundle(&bundle(), &mut bytes).unwrap();
        TraceInput::reader(io::Cursor::new(bytes)).open().unwrap()
    }

    fn launches(src: &TraceSource) -> Vec<(KernelId, Arc<KernelInfo>)> {
        src.streams()
            .iter()
            .flat_map(|s| s.commands.iter())
            .filter_map(|c| match c {
                CommandMeta::Launch { kernel, info } => Some((*kernel, info.clone())),
                CommandMeta::Marker(_) => None,
            })
            .collect()
    }

    #[test]
    fn bundle_source_accounts_logically() {
        let b = bundle();
        let mut src = TraceSource::from_bundle(b.clone());
        assert!(!src.is_streaming());
        // Physically everything is loaded, but nothing has been fetched.
        assert_eq!(src.stats(), TraceStats::default());
        let (kid, _) = launches(&src)[0];
        let cta = src.fetch_cta(kid, 0).unwrap();
        assert_eq!(cta.warps.len(), 2);
        let st = src.stats();
        assert_eq!(st.resident_ctas, 1);
        assert_eq!(st.ctas_decoded, 1);
        assert!(st.resident_bytes > 0);
        // Re-fetch while in the window: shared Arc, no extra accounting.
        let again = src.fetch_cta(kid, 0).unwrap();
        assert!(Arc::ptr_eq(&cta, &again));
        assert_eq!(src.stats(), st);
        src.release_cta(kid, 0);
        let st = src.stats();
        assert_eq!(st.resident_ctas, 0);
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.peak_resident_ctas, 1);
        // Fetch after release counts as a fresh (logical) decode.
        let _ = src.fetch_cta(kid, 0).unwrap();
        assert_eq!(src.stats().ctas_decoded, 2);
        src.release_cta(kid, 0);
        assert_eq!(src.to_bundle().unwrap(), b);
    }

    #[test]
    fn both_backings_account_identically() {
        // The same fetch/release sequence must produce the same stats on a
        // materialized and a streaming source — that is what keeps
        // simulation exports byte-identical across backings.
        let mut mat = TraceSource::from_bundle(bundle());
        let mut strm = streaming_source();
        let ls = launches(&mat);
        for (kid, info) in &ls {
            for i in 0..info.grid {
                mat.fetch_cta(*kid, i).unwrap();
                strm.fetch_cta(*kid, i).unwrap();
            }
        }
        assert_eq!(mat.stats(), strm.stats());
        for (kid, info) in &ls {
            for i in 0..info.grid {
                mat.release_cta(*kid, i);
                strm.release_cta(*kid, i);
            }
        }
        assert_eq!(mat.stats(), strm.stats());
        assert_eq!(mat.stats().resident_ctas, 0);
    }

    #[test]
    fn streaming_source_pages_ctas_in_and_out() {
        let mut src = streaming_source();
        assert!(src.is_streaming());
        assert_eq!(src.stats(), TraceStats::default());
        let ls = launches(&src);
        assert_eq!(ls.len(), 3);
        assert_eq!(ls[0].1.name, "vs");
        assert_eq!(ls[0].1.grid, 3);

        let (kid, _) = ls[0];
        let a = src.fetch_cta(kid, 1).unwrap();
        let st = src.stats();
        assert_eq!(st.resident_ctas, 1);
        assert_eq!(st.ctas_decoded, 1);
        assert!(st.resident_bytes > 0);
        // Re-fetch while resident: same Arc, no extra decode.
        let b = src.fetch_cta(kid, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(src.stats().ctas_decoded, 1);

        src.release_cta(kid, 1);
        let st = src.stats();
        assert_eq!(st.resident_ctas, 0);
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.peak_resident_ctas, 1);
        // Fetch after release decodes again.
        let _ = src.fetch_cta(kid, 1).unwrap();
        assert_eq!(src.stats().ctas_decoded, 2);
    }

    #[test]
    fn streaming_source_matches_materialized_content() {
        let mut src = streaming_source();
        assert_eq!(src.to_bundle().unwrap(), bundle());
        // to_bundle released everything it fetched.
        assert_eq!(src.stats().resident_ctas, 0);
    }

    #[test]
    fn v1_files_open_through_the_compat_scan() {
        let mut bytes = Vec::new();
        codec::write_bundle_v1(&bundle(), &mut bytes).unwrap();
        let mut src = TraceInput::reader(io::Cursor::new(bytes)).open().unwrap();
        assert!(!src.is_streaming(), "v1 has no index; must materialize");
        assert_eq!(src.to_bundle().unwrap(), bundle());
    }

    #[test]
    fn peak_reflects_the_widest_window() {
        let mut src = streaming_source();
        let ls = launches(&src);
        // Hold kernel 0's three CTAs at once, then release them all.
        for i in 0..3 {
            src.fetch_cta(ls[0].0, i).unwrap();
        }
        for i in 0..3 {
            src.release_cta(ls[0].0, i);
        }
        // One more fetch elsewhere; the peak stays at 3.
        src.fetch_cta(ls[1].0, 0).unwrap();
        let st = src.stats();
        assert_eq!(st.peak_resident_ctas, 3);
        assert_eq!(st.resident_ctas, 1);
        assert!(st.peak_resident_bytes >= st.resident_bytes);
    }

    #[test]
    fn out_of_range_fetches_are_errors_not_panics() {
        let mut src = streaming_source();
        let ls = launches(&src);
        assert!(src.fetch_cta(KernelId(99), 0).is_err());
        assert!(src.fetch_cta(ls[0].0, 99).is_err());
    }

    #[test]
    fn corrupt_index_fails_at_open() {
        let mut bytes = Vec::new();
        codec::write_bundle_mutated(&bundle(), &mut bytes, |_, (o, l)| (o + 1, l), &[]).unwrap();
        assert!(TraceInput::reader(io::Cursor::new(bytes)).open().is_err());
    }

    #[test]
    fn container_bytes_roundtrip_both_backings() {
        let mut streaming = streaming_source();
        let raw = streaming.container_bytes().unwrap();
        let mut reopened = TraceInput::reader(io::Cursor::new(raw)).open().unwrap();
        assert_eq!(reopened.to_bundle().unwrap(), bundle());

        let mut mat = TraceSource::from_bundle(bundle());
        let raw = mat.container_bytes().unwrap();
        let mut reopened = TraceInput::reader(io::Cursor::new(raw)).open().unwrap();
        assert!(reopened.is_streaming(), "re-encoded bytes are version 2");
        assert_eq!(reopened.to_bundle().unwrap(), bundle());
    }

    #[test]
    fn path_input_opens_and_remembers_its_path() {
        let p = std::env::temp_dir().join(format!("crisp_source_test_{}.crsp", std::process::id()));
        codec::save(&bundle(), &p).unwrap();
        let mut src = TraceInput::from(p.clone()).open().unwrap();
        assert!(src.is_streaming());
        assert_eq!(src.path(), Some(p.as_path()));
        assert_eq!(src.to_bundle().unwrap(), bundle());
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn source_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TraceSource>();
        assert_send::<TraceInput>();
    }
}
