//! Streams and trace bundles.
//!
//! A stream is an in-order sequence of commands, mirroring CUDA streams and
//! Vulkan queue submissions. The paper treats each rendering batch as a
//! stream command and gives the compute kernel its program-defined stream;
//! CRISP aggregates statistics *per stream* (Section III-A, citing the
//! per-stream stat work of Qiao et al.).

use crate::kernel::KernelTrace;

/// Identifier of a stream within a [`TraceBundle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u32);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// What kind of work a stream carries; partition policies use this to decide
/// which side of the GPU a stream's CTAs land on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Raster graphics rendering (vertex + fragment shading kernels).
    Graphics,
    /// General-purpose compute (CUDA-style kernels).
    Compute,
}

/// One in-order command in a stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Launch a kernel; the next command does not begin until it drains
    /// (within this stream — other streams proceed concurrently).
    Launch(KernelTrace),
    /// A boundary marker (drawcall or API event). Dynamic partitioners reset
    /// their sampling at these (paper: "the dynamic partition is reset ...
    /// at the new drawcall for rendering workloads").
    Marker(String),
}

/// An in-order sequence of commands sharing one [`StreamId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Stream {
    /// Stream identifier; unique within a bundle.
    pub id: StreamId,
    /// Work classification.
    pub kind: StreamKind,
    /// Ordered commands.
    pub commands: Vec<Command>,
}

impl Stream {
    /// An empty stream.
    pub fn new(id: StreamId, kind: StreamKind) -> Self {
        Stream {
            id,
            kind,
            commands: Vec::new(),
        }
    }

    /// Append a kernel launch.
    pub fn launch(&mut self, k: KernelTrace) -> &mut Self {
        self.commands.push(Command::Launch(k));
        self
    }

    /// Append a marker.
    pub fn marker(&mut self, label: impl Into<String>) -> &mut Self {
        self.commands.push(Command::Marker(label.into()));
        self
    }

    /// Number of kernel launches in the stream.
    pub fn kernel_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::Launch(_)))
            .count()
    }

    /// Iterate over the kernels in launch order.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelTrace> {
        self.commands.iter().filter_map(|c| match c {
            Command::Launch(k) => Some(k),
            Command::Marker(_) => None,
        })
    }

    /// Total dynamic instructions over all kernels.
    pub fn instr_count(&self) -> usize {
        self.kernels().map(KernelTrace::instr_count).sum()
    }
}

/// A set of streams replayed together — the unit of concurrent simulation.
///
/// Execution traces "can be collected separately for each task and replayed
/// together to achieve concurrent execution" (paper Section III); a bundle is
/// the replayed-together set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBundle {
    /// Streams, in no particular order; ids must be unique.
    pub streams: Vec<Stream>,
}

impl TraceBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        TraceBundle::default()
    }

    /// A bundle from streams.
    ///
    /// # Panics
    ///
    /// Panics if two streams share an id.
    pub fn from_streams(streams: Vec<Stream>) -> Self {
        let mut ids: Vec<_> = streams.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate stream ids in bundle");
        TraceBundle { streams }
    }

    /// Add a stream.
    ///
    /// # Panics
    ///
    /// Panics if the id already exists.
    pub fn push(&mut self, s: Stream) {
        assert!(
            self.streams.iter().all(|x| x.id != s.id),
            "duplicate stream id {}",
            s.id
        );
        self.streams.push(s);
    }

    /// Look up a stream by id.
    pub fn stream(&self, id: StreamId) -> Option<&Stream> {
        self.streams.iter().find(|s| s.id == id)
    }

    /// Total dynamic instruction count over every stream.
    pub fn instr_count(&self) -> usize {
        self.streams.iter().map(Stream::instr_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Op, Reg};
    use crate::kernel::{CtaTrace, WarpTrace};

    fn tiny_kernel(name: &str) -> KernelTrace {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::IntAlu, Reg(0), &[]));
        w.seal();
        KernelTrace::new(name, 32, 8, 0, vec![CtaTrace::new(vec![w])])
    }

    #[test]
    fn stream_orders_commands() {
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.marker("start")
            .launch(tiny_kernel("a"))
            .launch(tiny_kernel("b"));
        assert_eq!(s.kernel_count(), 2);
        assert_eq!(
            s.kernels().map(|k| k.name.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert_eq!(s.instr_count(), 4); // 2 kernels × (alu + exit)
    }

    #[test]
    fn bundle_lookup() {
        let mut b = TraceBundle::new();
        b.push(Stream::new(StreamId(0), StreamKind::Graphics));
        b.push(Stream::new(StreamId(1), StreamKind::Compute));
        assert_eq!(b.stream(StreamId(1)).unwrap().kind, StreamKind::Compute);
        assert!(b.stream(StreamId(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate stream id")]
    fn bundle_rejects_duplicate_ids() {
        let mut b = TraceBundle::new();
        b.push(Stream::new(StreamId(0), StreamKind::Graphics));
        b.push(Stream::new(StreamId(0), StreamKind::Compute));
    }

    #[test]
    #[should_panic(expected = "duplicate stream ids")]
    fn from_streams_rejects_duplicates() {
        let _ = TraceBundle::from_streams(vec![
            Stream::new(StreamId(2), StreamKind::Graphics),
            Stream::new(StreamId(2), StreamKind::Compute),
        ]);
    }

    #[test]
    fn bundle_types_are_send_sync() {
        // Shard workers move kernels and streams across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceBundle>();
        assert_send_sync::<Stream>();
        assert_send_sync::<Command>();
    }
}
