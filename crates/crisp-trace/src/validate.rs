//! Pre-flight structural validation of trace bundles.
//!
//! A malformed trace — a warp that never exits, a barrier with a missing
//! participant, a register id past the scoreboard's range — would otherwise
//! surface mid-run as a watchdog trip or a panic millions of cycles in.
//! [`validate_bundle`] lints a loaded [`TraceBundle`] in one linear pass so
//! bad inputs fail in milliseconds with a named, located error instead.
//!
//! The checks mirror the invariants the timing model in `crisp-sm` /
//! `crisp-sim` actually relies on:
//!
//! * every warp trace is non-empty and ends with exactly one [`Op::Exit`]
//!   (an unterminated warp parks its CTA forever — the canonical deadlock);
//! * all warps of a CTA execute the same number of barriers (a dropped
//!   arrival means the barrier only releases when the short warp exits,
//!   which silently skews timing even when it does not deadlock);
//! * register ids stay below [`SCOREBOARD_REGS`] (the scoreboard is a
//!   128-bit mask);
//! * memory opcodes carry a [`MemAccess`](crate::MemAccess) payload with
//!   1..=32 lane addresses, a non-zero width, and a space tag matching the
//!   opcode — and non-memory opcodes carry none;
//! * stream ids are unique and marker labels are non-empty.

use std::fmt;

use crate::isa::{Op, Space, WARP_SIZE};
use crate::kernel::{CtaTrace, KernelTrace};
use crate::source::{CommandMeta, TraceSource};
use crate::stream::{Command, StreamId, TraceBundle};

/// Number of architectural registers the timing model's scoreboard tracks
/// per warp. The scoreboard in `crisp-sm` is a `u128` bitmask, so register
/// ids must stay below this bound; the validator rejects traces that
/// violate it before they can reach the hot path.
pub const SCOREBOARD_REGS: u16 = 128;

/// Where in the bundle a [`TraceError`] was found. Fields are filled
/// outside-in; `None` means the error is not specific to that level.
///
/// Sites order outside-in (stream, kernel, cta, warp, instr) so error
/// lists and analyzer reports can sort deterministically by location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TraceErrorSite {
    /// Stream the offending kernel/command belongs to.
    pub stream: Option<StreamId>,
    /// Kernel name.
    pub kernel: Option<String>,
    /// CTA index within the kernel's grid.
    pub cta: Option<usize>,
    /// Warp index within the CTA.
    pub warp: Option<usize>,
    /// Dynamic instruction index within the warp trace.
    pub instr: Option<usize>,
}

impl fmt::Display for TraceErrorSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            Ok(())
        };
        if let Some(s) = self.stream {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if let Some(k) = &self.kernel {
            sep(f)?;
            write!(f, "kernel '{k}'")?;
        }
        if let Some(c) = self.cta {
            sep(f)?;
            write!(f, "cta {c}")?;
        }
        if let Some(w) = self.warp {
            sep(f)?;
            write!(f, "warp {w}")?;
        }
        if let Some(i) = self.instr {
            sep(f)?;
            write!(f, "instr {i}")?;
        }
        if first {
            write!(f, "bundle")?;
        }
        Ok(())
    }
}

/// What exactly is wrong at a [`TraceErrorSite`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// Two streams in the bundle share an id.
    DuplicateStreamId,
    /// A marker command has an empty label (unreferenceable by
    /// `fast_forward_to` / `run_to_marker`).
    EmptyMarkerLabel,
    /// A CTA has no warps; it could never launch or commit.
    EmptyCta,
    /// A CTA has more warps than its kernel's `block_threads` allow.
    OverfullCta {
        /// Warps present in the CTA trace.
        warps: usize,
        /// Warps the launch geometry permits.
        max: usize,
    },
    /// A warp trace has no instructions at all.
    EmptyWarp,
    /// A warp trace does not end with [`Op::Exit`]: the warp would stay
    /// resident forever, pinning its CTA — the canonical deadlock.
    UnterminatedWarp,
    /// Instructions appear after an [`Op::Exit`]; they could never issue.
    CodeAfterExit {
        /// Index of the first `Exit`.
        exit_at: usize,
    },
    /// The warps of one CTA disagree on how many barriers they execute.
    BarrierMismatch {
        /// Per-warp barrier counts, index = warp.
        counts: Vec<usize>,
    },
    /// A register id is outside the scoreboard's range.
    RegOutOfRange {
        /// The offending register id.
        reg: u16,
    },
    /// A load/store carries no [`MemAccess`](crate::MemAccess) payload.
    MissingMemPayload,
    /// A non-memory opcode carries a [`MemAccess`](crate::MemAccess).
    UnexpectedMemPayload,
    /// The payload's address space disagrees with the opcode's.
    SpaceMismatch {
        /// Space tagged on the opcode.
        op: Space,
        /// Space tagged on the payload.
        mem: Space,
    },
    /// A memory access has no lane addresses.
    NoActiveLanes,
    /// A memory access has more lane addresses than a warp has lanes.
    TooManyLanes {
        /// Lane addresses present.
        lanes: usize,
    },
    /// A memory access with a zero byte width.
    ZeroWidthAccess,
    /// A semantic defect reported by a downstream analysis pass (the
    /// `crisp-analyze` crate) rather than this structural validator. `code`
    /// is the analyzer's stable lint name (e.g. `race/shared-write-write`);
    /// `message` describes the specific finding. Carried here so analyzer
    /// errors can ride in `SimError::InvalidTrace` next to structural ones.
    Semantic {
        /// Stable lint name of the originating analysis.
        code: String,
        /// Rendered description of the finding.
        message: String,
    },
}

impl fmt::Display for TraceErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceErrorKind::DuplicateStreamId => write!(f, "duplicate stream id"),
            TraceErrorKind::EmptyMarkerLabel => write!(f, "marker with an empty label"),
            TraceErrorKind::EmptyCta => write!(f, "CTA has no warps"),
            TraceErrorKind::OverfullCta { warps, max } => write!(
                f,
                "CTA has {warps} warps but its launch geometry allows {max}"
            ),
            TraceErrorKind::EmptyWarp => write!(f, "warp trace is empty"),
            TraceErrorKind::UnterminatedWarp => write!(
                f,
                "warp trace does not end with Exit — the warp would never \
                 retire and its CTA would never commit (deadlock)"
            ),
            TraceErrorKind::CodeAfterExit { exit_at } => write!(
                f,
                "instructions after the Exit at index {exit_at} can never issue"
            ),
            TraceErrorKind::BarrierMismatch { counts } => write!(
                f,
                "warps of this CTA disagree on barrier count ({counts:?}) — \
                 a dropped barrier arrival"
            ),
            TraceErrorKind::RegOutOfRange { reg } => write!(
                f,
                "register id {reg} is outside the scoreboard's range \
                 0..{SCOREBOARD_REGS}"
            ),
            TraceErrorKind::MissingMemPayload => {
                write!(f, "memory opcode carries no address payload")
            }
            TraceErrorKind::UnexpectedMemPayload => {
                write!(f, "non-memory opcode carries an address payload")
            }
            TraceErrorKind::SpaceMismatch { op, mem } => write!(
                f,
                "opcode space {op:?} disagrees with payload space {mem:?}"
            ),
            TraceErrorKind::NoActiveLanes => write!(f, "memory access has no lane addresses"),
            TraceErrorKind::TooManyLanes { lanes } => write!(
                f,
                "memory access has {lanes} lane addresses but a warp has {WARP_SIZE} lanes"
            ),
            TraceErrorKind::ZeroWidthAccess => write!(f, "memory access width is zero bytes"),
            TraceErrorKind::Semantic { code, message } => write!(f, "{code}: {message}"),
        }
    }
}

/// One structural defect found by [`validate_bundle`], with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Where the defect sits in the bundle.
    pub site: TraceErrorSite,
    /// What the defect is.
    pub kind: TraceErrorKind,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.site, self.kind)
    }
}

impl std::error::Error for TraceError {}

/// Collects [`TraceError`]s with their location context.
struct Lint {
    errors: Vec<TraceError>,
    site: TraceErrorSite,
}

impl Lint {
    fn push(&mut self, kind: TraceErrorKind) {
        self.errors.push(TraceError {
            site: self.site.clone(),
            kind,
        });
    }
}

/// Validate a whole bundle. Returns every defect found (not just the
/// first), so a report names all problems of a bad trace at once; an empty
/// `Ok(())` means the bundle satisfies every invariant the timing model
/// relies on.
///
/// # Errors
///
/// Returns the full list of [`TraceError`]s when any check fails.
pub fn validate_bundle(bundle: &TraceBundle) -> Result<(), Vec<TraceError>> {
    let mut lint = Lint {
        errors: Vec::new(),
        site: TraceErrorSite::default(),
    };

    let mut seen: Vec<StreamId> = Vec::new();
    for s in &bundle.streams {
        lint.site = TraceErrorSite {
            stream: Some(s.id),
            ..Default::default()
        };
        if seen.contains(&s.id) {
            lint.push(TraceErrorKind::DuplicateStreamId);
        }
        seen.push(s.id);
        for cmd in &s.commands {
            match cmd {
                Command::Marker(label) => {
                    if label.is_empty() {
                        lint.push(TraceErrorKind::EmptyMarkerLabel);
                    }
                }
                Command::Launch(k) => validate_kernel_into(k, &mut lint),
            }
        }
    }

    if lint.errors.is_empty() {
        Ok(())
    } else {
        Err(lint.errors)
    }
}

/// Validate a [`TraceSource`] incrementally: kernels are materialized one
/// at a time (and released again on streaming sources), so a bundle far
/// larger than RAM lints in bounded memory. The checks and the resulting
/// error list are identical to [`validate_bundle`] over the materialized
/// bundle.
///
/// # Errors
///
/// Returns the full list of [`TraceError`]s when any check fails. An I/O
/// failure while paging a kernel in surfaces as a
/// [`TraceErrorKind::Semantic`] with code `trace-io`.
pub fn validate_source(src: &mut TraceSource) -> Result<(), Vec<TraceError>> {
    let mut lint = Lint {
        errors: Vec::new(),
        site: TraceErrorSite::default(),
    };
    let metas = src.streams().to_vec();
    let mut seen: Vec<StreamId> = Vec::new();
    for s in &metas {
        lint.site = TraceErrorSite {
            stream: Some(s.id),
            ..Default::default()
        };
        if seen.contains(&s.id) {
            lint.push(TraceErrorKind::DuplicateStreamId);
        }
        seen.push(s.id);
        for cmd in &s.commands {
            match cmd {
                CommandMeta::Marker(label) => {
                    if label.is_empty() {
                        lint.push(TraceErrorKind::EmptyMarkerLabel);
                    }
                }
                CommandMeta::Launch { kernel, info } => match src.materialize_kernel(*kernel) {
                    Ok(k) => {
                        validate_kernel_into(&k, &mut lint);
                        lint.site = TraceErrorSite {
                            stream: Some(s.id),
                            ..Default::default()
                        };
                    }
                    Err(e) => {
                        lint.site.kernel = Some(info.name.clone());
                        lint.push(TraceErrorKind::Semantic {
                            code: "trace-io".into(),
                            message: e.to_string(),
                        });
                        lint.site.kernel = None;
                    }
                },
            }
        }
    }
    if lint.errors.is_empty() {
        Ok(())
    } else {
        Err(lint.errors)
    }
}

/// Validate a single kernel trace outside any bundle context.
///
/// # Errors
///
/// Returns the full list of [`TraceError`]s when any check fails.
pub fn validate_kernel(k: &KernelTrace) -> Result<(), Vec<TraceError>> {
    let mut lint = Lint {
        errors: Vec::new(),
        site: TraceErrorSite::default(),
    };
    validate_kernel_into(k, &mut lint);
    if lint.errors.is_empty() {
        Ok(())
    } else {
        Err(lint.errors)
    }
}

fn validate_kernel_into(k: &KernelTrace, lint: &mut Lint) {
    let stream = lint.site.stream;
    let max_warps = k.warps_per_cta() as usize;
    for (ci, cta) in k.ctas.iter().enumerate() {
        lint.site = TraceErrorSite {
            stream,
            kernel: Some(k.name.clone()),
            cta: Some(ci),
            ..Default::default()
        };
        if cta.warps.is_empty() {
            lint.push(TraceErrorKind::EmptyCta);
            continue;
        }
        if cta.warp_count() > max_warps {
            lint.push(TraceErrorKind::OverfullCta {
                warps: cta.warp_count(),
                max: max_warps,
            });
        }
        validate_cta_into(cta, lint);
    }
    lint.site = TraceErrorSite {
        stream,
        ..Default::default()
    };
}

fn validate_cta_into(cta: &CtaTrace, lint: &mut Lint) {
    let mut bar_counts: Vec<usize> = Vec::with_capacity(cta.warps.len());
    let mut warp_broken = false;
    for (wi, w) in cta.warps.iter().enumerate() {
        lint.site.warp = Some(wi);
        lint.site.instr = None;
        if w.is_empty() {
            lint.push(TraceErrorKind::EmptyWarp);
            warp_broken = true;
            bar_counts.push(0);
            continue;
        }
        let mut bars = 0usize;
        let mut exit_at: Option<usize> = None;
        for (ii, instr) in w.iter().enumerate() {
            lint.site.instr = Some(ii);
            if let Some(at) = exit_at {
                lint.push(TraceErrorKind::CodeAfterExit { exit_at: at });
                warp_broken = true;
                break;
            }
            match instr.op {
                Op::Bar => bars += 1,
                Op::Exit => exit_at = Some(ii),
                _ => {}
            }
            validate_instr_into(instr, lint);
        }
        lint.site.instr = None;
        if exit_at.is_none() {
            lint.push(TraceErrorKind::UnterminatedWarp);
            warp_broken = true;
        }
        bar_counts.push(bars);
    }
    lint.site.warp = None;
    lint.site.instr = None;
    // Barrier-count comparison is only meaningful over structurally sound
    // warps; a truncated warp already got its own error above.
    if !warp_broken && bar_counts.windows(2).any(|w| w[0] != w[1]) {
        lint.push(TraceErrorKind::BarrierMismatch { counts: bar_counts });
    }
}

fn validate_instr_into(instr: &crate::Instr, lint: &mut Lint) {
    for r in instr.src_regs().chain(instr.dst) {
        if r.0 >= SCOREBOARD_REGS {
            lint.push(TraceErrorKind::RegOutOfRange { reg: r.0 });
        }
    }
    match (&instr.mem, instr.op.is_mem()) {
        (None, true) => lint.push(TraceErrorKind::MissingMemPayload),
        (Some(_), false) => lint.push(TraceErrorKind::UnexpectedMemPayload),
        (Some(mem), true) => {
            let op_space = match instr.op {
                Op::Ld(s) | Op::St(s) => s,
                _ => unreachable!("is_mem() implies Ld/St"),
            };
            if mem.space != op_space {
                lint.push(TraceErrorKind::SpaceMismatch {
                    op: op_space,
                    mem: mem.space,
                });
            }
            if mem.addrs.is_empty() {
                lint.push(TraceErrorKind::NoActiveLanes);
            } else if mem.addrs.len() > WARP_SIZE {
                lint.push(TraceErrorKind::TooManyLanes {
                    lanes: mem.addrs.len(),
                });
            }
            if mem.width == 0 {
                lint.push(TraceErrorKind::ZeroWidthAccess);
            }
        }
        (None, false) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{DataClass, Instr, MemAccess, Reg};
    use crate::kernel::WarpTrace;
    use crate::stream::{Stream, StreamKind};

    fn sealed_warp(instrs: Vec<Instr>) -> WarpTrace {
        let mut w = WarpTrace::new();
        w.extend(instrs);
        w.seal();
        w
    }

    fn kernel_of(warps: Vec<WarpTrace>) -> KernelTrace {
        let threads = 32 * warps.len() as u32;
        KernelTrace::new("k", threads, 8, 0, vec![CtaTrace::new(warps)])
    }

    fn bundle_of(k: KernelTrace) -> TraceBundle {
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        TraceBundle::from_streams(vec![s])
    }

    fn kinds(errs: &[TraceError]) -> Vec<&TraceErrorKind> {
        errs.iter().map(|e| &e.kind).collect()
    }

    #[test]
    fn clean_bundle_passes() {
        let w = sealed_warp(vec![
            Instr::load(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 32),
            ),
            Instr::alu(Op::FpFma, Reg(2), &[Reg(1)]),
            Instr::bar(),
        ]);
        let k = kernel_of(vec![w.clone(), w]);
        assert_eq!(validate_bundle(&bundle_of(k)), Ok(()));
    }

    #[test]
    fn unterminated_warp_is_flagged() {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::IntAlu, Reg(0), &[]));
        // no seal(): the warp never exits
        let errs = validate_kernel(&kernel_of(vec![w])).unwrap_err();
        assert!(matches!(errs[0].kind, TraceErrorKind::UnterminatedWarp));
        assert_eq!(errs[0].site.warp, Some(0));
    }

    #[test]
    fn barrier_mismatch_is_flagged_with_counts() {
        let a = sealed_warp(vec![Instr::bar(), Instr::bar()]);
        let b = sealed_warp(vec![Instr::bar()]);
        let errs = validate_kernel(&kernel_of(vec![a, b])).unwrap_err();
        assert_eq!(
            kinds(&errs),
            vec![&TraceErrorKind::BarrierMismatch { counts: vec![2, 1] }]
        );
    }

    #[test]
    fn register_out_of_scoreboard_range_is_flagged() {
        let w = sealed_warp(vec![Instr::alu(Op::IntAlu, Reg(200), &[Reg(3)])]);
        let errs = validate_kernel(&kernel_of(vec![w])).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.kind == TraceErrorKind::RegOutOfRange { reg: 200 }));
    }

    #[test]
    fn malformed_mem_payloads_are_flagged() {
        // Missing payload on a load.
        let naked_load = Instr {
            op: Op::Ld(Space::Global),
            dst: Some(Reg(1)),
            srcs: [None; crate::MAX_SRCS],
            mem: None,
        };
        // Payload on an ALU op.
        let alu_with_mem = Instr {
            op: Op::IntAlu,
            dst: Some(Reg(2)),
            srcs: [None; crate::MAX_SRCS],
            mem: Some(MemAccess {
                space: Space::Global,
                class: DataClass::Compute,
                width: 4,
                addrs: vec![0],
            }),
        };
        // Too many lanes, zero width, space mismatch.
        let bad_access = Instr {
            op: Op::Ld(Space::Global),
            dst: Some(Reg(3)),
            srcs: [None; crate::MAX_SRCS],
            mem: Some(MemAccess {
                space: Space::Shared,
                class: DataClass::Compute,
                width: 0,
                addrs: vec![0; 33],
            }),
        };
        let w = sealed_warp(vec![naked_load, alu_with_mem, bad_access]);
        let errs = validate_kernel(&kernel_of(vec![w])).unwrap_err();
        let ks = kinds(&errs);
        assert!(ks.contains(&&TraceErrorKind::MissingMemPayload));
        assert!(ks.contains(&&TraceErrorKind::UnexpectedMemPayload));
        assert!(ks.contains(&&TraceErrorKind::TooManyLanes { lanes: 33 }));
        assert!(ks.contains(&&TraceErrorKind::ZeroWidthAccess));
        assert!(ks.contains(&&TraceErrorKind::SpaceMismatch {
            op: Space::Global,
            mem: Space::Shared,
        }));
    }

    #[test]
    fn code_after_exit_is_flagged_once_per_warp() {
        let mut w = WarpTrace::new();
        w.push(Instr::exit());
        w.push(Instr::alu(Op::IntAlu, Reg(0), &[]));
        w.push(Instr::alu(Op::IntAlu, Reg(0), &[]));
        let errs = validate_kernel(&kernel_of(vec![w])).unwrap_err();
        assert_eq!(
            kinds(&errs),
            vec![&TraceErrorKind::CodeAfterExit { exit_at: 0 }]
        );
    }

    #[test]
    fn duplicate_stream_ids_and_empty_markers_are_flagged() {
        // Constructed directly: TraceBundle::push would panic.
        let mut a = Stream::new(StreamId(3), StreamKind::Compute);
        a.marker("");
        let b = Stream::new(StreamId(3), StreamKind::Graphics);
        let bundle = TraceBundle {
            streams: vec![a, b],
        };
        let errs = validate_bundle(&bundle).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.kind == TraceErrorKind::EmptyMarkerLabel));
        assert!(errs
            .iter()
            .any(|e| e.kind == TraceErrorKind::DuplicateStreamId
                && e.site.stream == Some(StreamId(3))));
    }

    #[test]
    fn empty_and_overfull_ctas_are_flagged() {
        let empty = KernelTrace {
            name: "empty-cta".into(),
            block_threads: 32,
            regs_per_thread: 8,
            smem_per_cta: 0,
            ctas: vec![CtaTrace::new(vec![])],
        };
        let errs = validate_kernel(&empty).unwrap_err();
        assert_eq!(kinds(&errs), vec![&TraceErrorKind::EmptyCta]);

        // Overfull constructed directly: KernelTrace::new would panic.
        let w = sealed_warp(vec![Instr::branch()]);
        let overfull = KernelTrace {
            name: "overfull".into(),
            block_threads: 32,
            regs_per_thread: 8,
            smem_per_cta: 0,
            ctas: vec![CtaTrace::new(vec![w.clone(), w])],
        };
        let errs = validate_kernel(&overfull).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.kind == TraceErrorKind::OverfullCta { warps: 2, max: 1 }));
    }

    #[test]
    fn source_validation_matches_bundle_validation() {
        let mut bad = WarpTrace::new();
        bad.push(Instr::alu(Op::IntAlu, Reg(200), &[]));
        // no seal(): unterminated, plus an out-of-range register
        let k = kernel_of(vec![bad]);
        let bundle = bundle_of(k);
        let expected = validate_bundle(&bundle).unwrap_err();

        let mut bytes = Vec::new();
        crate::codec::write_bundle(&bundle, &mut bytes).unwrap();
        let mut src = crate::TraceInput::reader(std::io::Cursor::new(bytes))
            .open()
            .unwrap();
        assert!(src.is_streaming());
        assert_eq!(validate_source(&mut src).unwrap_err(), expected);
        // Incremental validation leaves no CTAs resident.
        assert_eq!(src.stats().resident_ctas, 0);

        let clean = sealed_warp(vec![Instr::alu(Op::FpFma, Reg(1), &[])]);
        let mut src = crate::TraceInput::from(bundle_of(kernel_of(vec![clean])))
            .open()
            .unwrap();
        assert_eq!(validate_source(&mut src), Ok(()));
    }

    #[test]
    fn errors_render_with_their_site() {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::IntAlu, Reg(0), &[]));
        let k = kernel_of(vec![w]);
        let errs = validate_bundle(&bundle_of(k)).unwrap_err();
        let text = errs[0].to_string();
        assert!(text.contains("stream0"), "{text}");
        assert!(text.contains("kernel 'k'"), "{text}");
        assert!(text.contains("warp 0"), "{text}");
        assert!(text.contains("Exit"), "{text}");
    }
}
