//! Checkpoint/resume and ROI fast-forward: periodically checkpoint a
//! concurrent render+compute simulation, resume it mid-flight with
//! bit-identical results, then skip the warmup entirely with fast-forward
//! sampling.
//!
//! Run with:
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use crisp_core::prelude::*;
use crisp_core::{COMPUTE_STREAM, GRAPHICS_STREAM};

fn main() -> std::io::Result<()> {
    // A two-phase workload: one warmup frame + VIO chain, a marker, then
    // the region of interest (a second frame + chain with warm caches).
    let scene = Scene::build(SceneId::SponzaKhronos, 0.3);
    let (w, h) = (96, 54);
    let mut g = Stream::new(GRAPHICS_STREAM, StreamKind::Graphics);
    g.commands
        .extend(scene.render(w, h, false, GRAPHICS_STREAM).trace.commands);
    g.marker("roi");
    g.commands
        .extend(scene.render(w, h, false, GRAPHICS_STREAM).trace.commands);
    let mut c = vio(COMPUTE_STREAM, ComputeScale::tiny());
    c.marker("roi");
    c.commands
        .extend(vio(COMPUTE_STREAM, ComputeScale::tiny()).commands);
    let bundle = TraceBundle::from_streams(vec![g, c]);

    let gpu = GpuConfig::test_tiny();
    let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);
    let build = |trace: TraceBundle| {
        Simulation::builder()
            .gpu(gpu.clone())
            .partition(spec.clone())
            .trace(trace)
    };

    // 1. Run with periodic checkpointing: a full-state snapshot lands in
    //    target/ckpt-example every 50k cycles.
    let dir = std::path::Path::new("target/ckpt-example");
    let reference = build(bundle.clone())
        .checkpoint_every(50_000)
        .checkpoint_to(dir)
        .run_or_panic();
    println!("reference run: {} cycles", reference.cycles);

    // 2. Resume from the first checkpoint. The restored simulator finishes
    //    with identical statistics — and byte-identical exports — even at a
    //    different worker-thread count.
    let ckpt = dir.join("ckpt-50000.ckpt");
    let mut resumed = Simulation::resume(&ckpt)?;
    println!("resumed from {} at cycle {}", ckpt.display(), resumed.now());
    resumed.set_threads(2);
    let replay = resumed.run_or_panic();
    assert_eq!(replay.cycles, reference.cycles);
    assert_eq!(replay.per_stream, reference.per_stream);
    println!("resumed run matches: {} cycles", replay.cycles);

    // 3. Fast-forward sampling: skip everything before the "roi" marker —
    //    the warmup's memory footprint is replayed functionally (warming
    //    L1/L2/DRAM, charging zero cycles) and only the ROI is simulated
    //    in detail.
    let roi = build(bundle).fast_forward_to("roi").run_or_panic();
    println!(
        "ROI-only run: {} cycles ({} full), {} instructions",
        roi.cycles,
        reference.cycles,
        roi.per_stream
            .values()
            .map(|r| r.stats.instructions)
            .sum::<u64>(),
    );
    assert!(roi.cycles < reference.cycles);
    Ok(())
}
