//! Experiment customization: define your own GPU configuration.
//!
//! The paper's artifact appendix: "Customization can be done by adjusting
//! the GPU configuration file." Here we sketch a hypothetical next-gen
//! mobile XR part (more SMs than Orin, wider DRAM) and compare a mixed
//! rendering+VIO workload across the three machines.
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_gpu
//! ```

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, simulate, COMPUTE_STREAM, GRAPHICS_STREAM};

fn main() {
    // A custom part: 24 SMs at 1.1 GHz with 273 GB/s (an XR SoC sketch).
    let mut xr_soc = GpuConfig::jetson_orin();
    xr_soc.name = "XR-SoC (custom)".into();
    xr_soc.n_sms = 24;
    xr_soc.core_clock_mhz = 1100.0;
    xr_soc.dram_gbps = 273.0;
    xr_soc.l2_bytes = 8 << 20; // 8 MB L2
    xr_soc.l2_banks = 16;

    let scene = Scene::build(SceneId::SponzaPbr, 0.5);

    println!(
        "{:<18} {:>12} {:>10} {:>10}",
        "GPU", "makespan cy", "ms", "L2 hit"
    );
    for gpu in [GpuConfig::jetson_orin(), GpuConfig::rtx3070(), xr_soc] {
        let frame = scene.render(160, 90, false, GRAPHICS_STREAM);
        let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);
        let r = simulate(
            gpu.clone(),
            spec,
            concurrent_bundle(frame.trace, vio(COMPUTE_STREAM, ComputeScale::tiny())),
        );
        println!(
            "{:<18} {:>12} {:>10.4} {:>9.1}%",
            gpu.name,
            r.makespan(),
            gpu.cycles_to_ms(r.makespan()),
            r.l2_stats.total().hit_rate() * 100.0
        );
    }
}
