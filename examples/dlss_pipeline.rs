//! DLSS-style upscaling with async compute: render at half resolution and
//! super-sample with a tensor network, overlapping the upscaler with the
//! *next* frame's rendering.
//!
//! The paper's background section motivates exactly this: "the rendering
//! pipeline can begin processing the next frame while post-processing
//! operates on the previously rendered image. ... DLSS uses tensor cores
//! extensively, and fragment shaders use floating-point units. This makes
//! DLSS post-processing and the rendering pipeline suitable for async
//! compute to maximize system throughput."
//!
//! Run with:
//! ```sh
//! cargo run --release --example dlss_pipeline
//! ```

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, simulate, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_scenes::upscaler;
use crisp_trace::TraceBundle;

fn main() {
    let gpu = GpuConfig::jetson_orin();
    let scene = Scene::build(SceneId::SponzaPbr, 0.5);
    let scale = ComputeScale { factor: 0.6 };

    // Option A: render natively at full (scaled-)resolution.
    let native = scene.render(320, 180, false, GRAPHICS_STREAM);
    let native_cycles = simulate(
        gpu.clone(),
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![native.trace]),
    )
    .cycles;

    // Option B: render at half resolution; the tensor upscaler runs as
    // async compute concurrently with the next frame's rendering (two
    // half-res frames + one upscale pass in flight).
    let mut low = scene.render(160, 90, false, GRAPHICS_STREAM);
    let next = scene.render(160, 90, false, GRAPHICS_STREAM);
    low.trace.commands.extend(next.trace.commands);
    let up = upscaler(COMPUTE_STREAM, scale);
    let r = simulate(
        gpu.clone(),
        PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        concurrent_bundle(low.trace, up),
    );
    let pipelined = r
        .per_stream
        .values()
        .map(|s| s.stats.finish_cycle)
        .max()
        .unwrap();
    // Two frames completed in `pipelined` cycles → per-frame cost:
    let per_frame = pipelined / 2;

    println!("DLSS-style pipeline study on {} (SPH):\n", gpu.name);
    println!("native render @320x180:             {native_cycles:>8} cycles/frame");
    println!("half-res render + async upscale:    {per_frame:>8} cycles/frame");
    println!(
        "speedup: {:.2}x  (upscaler tensor work overlaps fragment FP work)",
        native_cycles as f64 / per_frame as f64
    );
    println!(
        "\nupscaler stream: {} instrs, IPC {:.2}",
        r.per_stream[&COMPUTE_STREAM].stats.instructions,
        r.per_stream[&COMPUTE_STREAM].stats.ipc()
    );
}
