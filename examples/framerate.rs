//! Frame-rate study: how much FPS does a rendering workload lose when a
//! system service shares the GPU, under different partitions?
//!
//! Simulates a short orbiting-camera sequence of the Platformer scene,
//! alone and with the VIO pipeline running concurrently, and reports
//! per-frame times and effective FPS (at the simulated GPU's clock; the
//! scaled scenes are far lighter than real games, so FPS values are only
//! comparable to each other).
//!
//! Run with:
//! ```sh
//! cargo run --release --example framerate
//! ```

use crisp_core::prelude::*;
use crisp_core::{COMPUTE_STREAM, GRAPHICS_STREAM};

fn main() {
    let gpu = GpuConfig::jetson_orin();
    let scene = Scene::build(SceneId::Platformer, 0.4);
    let frames = 4;

    let alone = simulate_frames(&scene, 160, 90, frames, &gpu, PartitionSpec::greedy(), None);

    let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);
    let shared = simulate_frames(
        &scene,
        160,
        90,
        frames,
        &gpu,
        spec,
        Some(vio(COMPUTE_STREAM, ComputeScale { factor: 0.5 })),
    );

    println!("PL sequence on {} ({} frames):\n", gpu.name, frames);
    println!(
        "{:<8} {:>14} {:>14}",
        "frame", "alone (cy)", "with VIO (cy)"
    );
    for i in 0..frames {
        println!(
            "{:<8} {:>14} {:>14}",
            i,
            alone.frame_cycles(i),
            shared.frame_cycles(i)
        );
    }
    println!(
        "\nFPS alone: {:.0}   FPS with VIO: {:.0}   ({:.1}% frame-time overhead)",
        alone.fps(&gpu),
        shared.fps(&gpu),
        (alone.fps(&gpu) / shared.fps(&gpu) - 1.0) * 100.0
    );
    println!("\nshared run summary:\n{}", shared.result.summary());
}
