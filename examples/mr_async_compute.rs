//! Mixed-reality async compute: does offloading system tasks to the GPU
//! alongside rendering pay off, or should they run serially?
//!
//! The paper's motivation (Section II-A): MR systems run VIO, hologram
//! processing and eye-segmentation NNs next to the rendering pipeline, and
//! "running the algorithms on the GPUs naively with the rendering workloads
//! causes resource contention". This example quantifies that trade-off for
//! all three system tasks on the Jetson Orin model.
//!
//! Run with:
//! ```sh
//! cargo run --release --example mr_async_compute
//! ```

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, simulate, COMPUTE_STREAM, GRAPHICS_STREAM};

fn main() {
    let gpu = GpuConfig::jetson_orin();
    let scene = Scene::build(SceneId::SponzaPbr, 0.4);
    let (w, h) = crisp_core::Resolution::Tiny.dims();
    let scale = ComputeScale { factor: 0.4 };

    println!(
        "MR workload study on {} (SPH rendering + system task)\n",
        gpu.name
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "task", "serial (cy)", "async (cy)", "speedup"
    );

    for (label, stream) in [
        ("VIO", vio(COMPUTE_STREAM, scale)),
        ("HOLO", holo(COMPUTE_STREAM, scale)),
        ("NN", nn(COMPUTE_STREAM, scale)),
    ] {
        let frame = scene.render(w, h, false, GRAPHICS_STREAM);

        // Serial: render the frame, then run the task (one stream).
        let mut serial = Stream::new(GRAPHICS_STREAM, StreamKind::Graphics);
        serial.commands = frame.trace.commands.clone();
        serial.commands.extend(stream.commands.clone());
        let serial_cycles = simulate(
            gpu.clone(),
            PartitionSpec::greedy(),
            TraceBundle::from_streams(vec![serial]),
        )
        .cycles;

        // Async compute: fine-grained intra-SM sharing.
        let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);
        let conc = simulate(gpu.clone(), spec, concurrent_bundle(frame.trace, stream));
        let conc_cycles = conc
            .per_stream
            .values()
            .map(|r| r.stats.finish_cycle)
            .max()
            .unwrap_or(conc.cycles);

        println!(
            "{:<8} {:>12} {:>12} {:>9.2}x",
            label,
            serial_cycles,
            conc_cycles,
            serial_cycles as f64 / conc_cycles as f64
        );
    }
    println!("\n(speedup > 1 means async compute beats serial execution)");
}
