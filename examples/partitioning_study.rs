//! Partitioning study: one graphics+compute pair under every partition
//! method the simulator supports (paper Figure 4's design space).
//!
//! Run with:
//! ```sh
//! cargo run --release --example partitioning_study
//! ```

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, simulate, COMPUTE_STREAM, GRAPHICS_STREAM};

fn main() {
    let gpu = GpuConfig::jetson_orin();
    let scene = Scene::build(SceneId::Pistol, 0.4);
    let (w, h) = crisp_core::Resolution::Tiny.dims();
    let scale = ComputeScale { factor: 0.4 };

    let specs: Vec<(&str, PartitionSpec)> = vec![
        ("Greedy", PartitionSpec::greedy()),
        (
            "MPS-even",
            PartitionSpec::mps_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        ),
        (
            "MiG-even",
            PartitionSpec::mig_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        ),
        (
            "FG-even",
            PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        ),
        (
            "FG-dynamic",
            PartitionSpec::fg_dynamic(SlicerConfig::default()),
        ),
        (
            "MPS+TAP",
            PartitionSpec::tap_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM, TapConfig::default()),
        ),
    ];

    println!("PT + NN on {}:\n", gpu.name);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "policy", "makespan", "gfx cycles", "nn cycles", "L2 hit"
    );
    let mut baseline = None;
    for (name, spec) in specs {
        let frame = scene.render(w, h, false, GRAPHICS_STREAM);
        let compute = nn(COMPUTE_STREAM, scale);
        let r = simulate(gpu.clone(), spec, concurrent_bundle(frame.trace, compute));
        let makespan = r
            .per_stream
            .values()
            .map(|s| s.stats.finish_cycle)
            .max()
            .unwrap_or(r.cycles);
        let base = *baseline.get_or_insert(makespan);
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>9.1}%  ({:.2}x vs Greedy)",
            name,
            makespan,
            r.per_stream[&GRAPHICS_STREAM].stats.finish_cycle,
            r.per_stream[&COMPUTE_STREAM].stats.finish_cycle,
            r.l2_stats.total().hit_rate() * 100.0,
            base as f64 / makespan as f64,
        );
    }
}
