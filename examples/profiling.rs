//! Profiling: run a concurrent render+compute workload with full telemetry
//! and export the observability artifacts — a Perfetto-loadable Chrome
//! trace, counter/metric CSVs, and a text profile report.
//!
//! Run with:
//! ```sh
//! cargo run --release --example profiling
//! ```
//! then open `target/profile/trace.json` in <https://ui.perfetto.dev> or
//! `chrome://tracing`.

use crisp_core::prelude::*;

fn main() {
    // 1. A mixed workload: one rendered frame plus the VIO kernel chain.
    let scene = Scene::build(SceneId::SponzaKhronos, 0.3);
    let (w, h) = crisp_core::Resolution::Tiny.dims();
    let frame = scene.render(w, h, false, crisp_core::GRAPHICS_STREAM);
    let compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale::tiny());

    // 2. Simulate with every telemetry channel on. `Telemetry::FULL` turns
    //    on span recording (kernel/CTA timelines, markers) and periodic
    //    counter sampling on top of the occupancy/composition timelines;
    //    `.profile_to` writes trace.json / counters.csv / metrics.csv /
    //    profile.txt there when the run finishes.
    let gpu = GpuConfig::test_tiny();
    let spec = PartitionSpec::fg_even(
        &gpu,
        crisp_core::GRAPHICS_STREAM,
        crisp_core::COMPUTE_STREAM,
    );
    let result = Simulation::builder()
        .gpu(gpu)
        .partition(spec)
        .telemetry(Telemetry::FULL)
        .counter_interval(200)
        .profile_to("target/profile")
        .trace(crisp_core::concurrent_bundle(frame.trace, compute))
        .run_or_panic();

    // 3. Everything written to disk is also queryable in memory.
    println!("{}", result.profile_report());
    println!(
        "timeline: {} spans, {} instants, {} counter samples",
        result.timeline.span_count(),
        result.timeline.instants().len(),
        result.timeline.counters().len(),
    );
    let stalls = result.stalls();
    println!(
        "stall causes: scoreboard={} mem={} mshr={} pipe={} barrier={}",
        stalls.scoreboard, stalls.mem_pending, stalls.mshr_full, stalls.pipe_busy, stalls.barrier,
    );
    println!(
        "metrics registry: {} series; kernels observed: {}",
        result.metrics.len(),
        result.metrics.counter_total("kernel/count")
    );
    println!("\nopen target/profile/trace.json in https://ui.perfetto.dev");
}
