//! Quickstart: render one frame of Sponza, pair it with the VIO compute
//! workload, and simulate both concurrently on the Jetson Orin model.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crisp_core::prelude::*;

fn main() {
    // 1. Build the scene and render one frame. Rendering is functional: it
    //    shades a framebuffer AND emits the instruction trace the timing
    //    model replays.
    let scene = Scene::build(SceneId::SponzaKhronos, 0.5);
    let (w, h) = crisp_core::Resolution::Tiny.dims();
    let frame = scene.render(w, h, false, crisp_core::GRAPHICS_STREAM);
    println!(
        "rendered {}x{h} frame: {} VS invocations, {} fragments, {} kernels",
        w,
        frame.stats.vs_invocations(),
        frame.stats.fragments(),
        frame.trace.kernel_count(),
    );

    // 2. Build the compute side: the VIO corner/flow kernel chain.
    let compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale { factor: 0.5 });
    println!("VIO stream: {} kernels", compute.kernel_count());

    // 3. Simulate both streams concurrently under a fine-grained intra-SM
    //    partition (the async-compute configuration). The worker-thread
    //    count only changes wall-clock time, never the results.
    let gpu = GpuConfig::jetson_orin();
    let spec = PartitionSpec::fg_even(
        &gpu,
        crisp_core::GRAPHICS_STREAM,
        crisp_core::COMPUTE_STREAM,
    );
    let result = Simulation::builder()
        .gpu(gpu.clone())
        .partition(spec)
        .threads(std::thread::available_parallelism().map_or(1, |n| n.get().min(4)))
        .trace(crisp_core::concurrent_bundle(frame.trace, compute))
        .run_or_panic();

    println!(
        "\nsimulated {} cycles ({:.3} ms at {} MHz)",
        result.cycles,
        gpu.cycles_to_ms(result.cycles),
        gpu.core_clock_mhz
    );
    for (id, r) in &result.per_stream {
        println!(
            "  {id}: {} instrs, IPC {:.2}, {} CTAs, {} KiB DRAM",
            r.stats.instructions,
            r.stats.ipc(),
            r.stats.ctas,
            r.dram_bytes / 1024,
        );
    }
    let l2 = result.l2_stats.total();
    println!(
        "  L2: {} accesses, {:.1}% hit rate; texture lines: {:.1}% of valid L2",
        l2.accesses,
        l2.hit_rate() * 100.0,
        result.l2_composition.class_fraction(DataClass::Texture) * 100.0,
    );
}
