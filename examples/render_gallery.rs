//! Render every evaluated scene to a PPM image (the paper's Figures 5/8
//! visuals), including the Sponza LoD on/off comparison.
//!
//! Run with:
//! ```sh
//! cargo run --release --example render_gallery
//! ```
//!
//! Images are written to `target/gallery/`.

use crisp_core::experiments::render_scene_to_ppm;
use crisp_core::Resolution;
use crisp_scenes::SceneId;

fn main() -> std::io::Result<()> {
    let out = std::path::Path::new("target/gallery");
    std::fs::create_dir_all(out)?;
    for id in SceneId::ALL {
        let path = out.join(format!("{}.ppm", id.label().to_lowercase()));
        let cov = render_scene_to_ppm(id, 1.0, Resolution::Scaled2K, false, &path)?;
        println!(
            "{:<4} -> {} (coverage {:.1}%)",
            id.label(),
            path.display(),
            cov * 100.0
        );
    }
    // Figure 8: Sponza with LoD forced off (mip 0 everywhere) aliases.
    let lod0 = out.join("spl_lod0.ppm");
    let cov = render_scene_to_ppm(
        SceneId::SponzaKhronos,
        1.0,
        Resolution::Scaled2K,
        true,
        &lod0,
    )?;
    println!(
        "SPL (LoD off) -> {} (coverage {:.1}%)",
        lod0.display(),
        cov * 100.0
    );
    Ok(())
}
