//! The artifact workflow: collect traces once, replay them many times.
//!
//! CRISP is trace-driven — the paper's artifact ships pre-collected traces
//! precisely so simulations can run without the tracing frontend. This
//! example collects a rendering + compute bundle, saves it in the compact
//! CRSP binary format, then replays it under two different partition
//! policies by **streaming straight from the file**: handing `.trace(..)` a
//! path demand-pages each CTA's instructions on first dispatch and drops
//! them at commit, so peak memory tracks the in-flight window, not the
//! container size.
//!
//! Run with:
//! ```sh
//! cargo run --release --example trace_workflow
//! ```

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_trace::codec;

fn main() -> std::io::Result<()> {
    // 1. Collect: render a frame and generate the compute kernels.
    let scene = Scene::build(SceneId::MaterialTesters, 0.4);
    let frame = scene.render(160, 90, false, GRAPHICS_STREAM);
    let bundle = concurrent_bundle(frame.trace, nn(COMPUTE_STREAM, ComputeScale::tiny()));
    println!(
        "collected bundle: {} streams, {} instructions",
        bundle.streams.len(),
        bundle.instr_count()
    );

    // 2. Save in the CRSP binary format.
    let path = std::env::temp_dir().join("crisp_example.crsp");
    codec::save(&bundle, &path)?;
    let size = std::fs::metadata(&path)?.len();
    println!(
        "saved to {} ({} KiB, {:.2} bytes/instruction)",
        path.display(),
        size / 1024,
        size as f64 / bundle.instr_count() as f64
    );

    // 3. Replay under two policies, streaming CTAs straight from the file.
    let gpu = GpuConfig::jetson_orin();
    for (name, spec) in [
        ("greedy", PartitionSpec::greedy()),
        (
            "fg-even",
            PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        ),
    ] {
        let r = Simulation::builder()
            .gpu(gpu.clone())
            .partition(spec)
            .trace(path.as_path())
            .run()
            .unwrap_or_else(|e| panic!("{e}"));
        println!(
            "replay [{name:8}]: {} cycles, peak resident trace {} KiB \
             (container {} KiB, {} CTA fetches)",
            r.cycles,
            r.trace.peak_resident_bytes / 1024,
            size / 1024,
            r.trace.ctas_decoded,
        );
    }
    std::fs::remove_file(path)?;
    Ok(())
}
