//! A full XR system frame on one GPU: rendering + asynchronous timewarp +
//! visual-inertial odometry, spatially sharing a Jetson Orin.
//!
//! This is the scenario the paper's introduction motivates: "MR systems
//! exhibit high computational diversity, making it inefficient and
//! impractical to develop custom accelerators for each task. GPUs can be
//! used to run these algorithms, but running the algorithms on the GPUs
//! naively with the rendering workloads causes resource contention."
//!
//! Three streams run concurrently under a fine-grained intra-SM partition
//! (rendering 1/2, timewarp 1/4, VIO 1/4) — the paper itself only
//! evaluates two-task partitions but notes the framework "can be easily
//! extended to support more than 2 workloads"; this example is that
//! extension.
//!
//! Run with:
//! ```sh
//! cargo run --release --example xr_system
//! ```

use crisp_core::prelude::*;
use crisp_core::simulate;
use crisp_scenes::timewarp;

fn main() {
    const GFX: StreamId = StreamId(0);
    const ATW: StreamId = StreamId(1);
    const VIO: StreamId = StreamId(2);

    let gpu = GpuConfig::jetson_orin();
    let (w, h) = crisp_core::Resolution::Tiny.dims();

    // The rendered scene (the MR world): a stereo side-by-side frame, the
    // layout the HMD compositor consumes — plus the two system services.
    let scene = Scene::build(SceneId::SponzaPbr, 0.4);
    let frame = scene.render_stereo(w, h, false, GFX, 0.6);
    let atw = timewarp(ATW, w, h, ComputeScale { factor: 0.5 });
    let vio_stream = vio(VIO, ComputeScale { factor: 0.5 });

    let spec = PartitionSpec::fg_fractions(&gpu, [(GFX, (4, 8)), (ATW, (2, 8)), (VIO, (2, 8))]);
    let bundle = TraceBundle::from_streams(vec![frame.trace, atw, vio_stream]);
    let r = simulate(gpu.clone(), spec, bundle);

    println!(
        "XR system frame on {} (stereo render + ATW + VIO, 3 concurrent streams):\n",
        gpu.name
    );
    println!(
        "{:<10} {:>12} {:>10} {:>8} {:>12}",
        "stream", "finish (cy)", "instrs", "IPC", "DRAM KiB"
    );
    for (name, id) in [("render", GFX), ("timewarp", ATW), ("vio", VIO)] {
        let s = &r.per_stream[&id];
        println!(
            "{:<10} {:>12} {:>10} {:>8.2} {:>12}",
            name,
            s.stats.finish_cycle,
            s.stats.instructions,
            s.stats.ipc(),
            s.dram_bytes / 1024
        );
    }
    let makespan = r
        .per_stream
        .values()
        .map(|s| s.stats.finish_cycle)
        .max()
        .unwrap();
    println!(
        "\nframe + services makespan: {} cycles ({:.3} ms) — MTP budget is 15-20 ms",
        makespan,
        gpu.cycles_to_ms(makespan)
    );
    println!(
        "L2: {:.1}% hit; composition: {:.0}% texture / {:.0}% pipeline / {:.0}% compute",
        r.l2_stats.total().hit_rate() * 100.0,
        r.l2_composition.class_fraction(DataClass::Texture) * 100.0,
        r.l2_composition.class_fraction(DataClass::Pipeline) * 100.0,
        r.l2_composition.class_fraction(DataClass::Compute) * 100.0,
    );
}
