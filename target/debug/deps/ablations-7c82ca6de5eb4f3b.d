/root/repo/target/debug/deps/ablations-7c82ca6de5eb4f3b.d: crates/crisp-bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-7c82ca6de5eb4f3b: crates/crisp-bench/src/bin/ablations.rs

crates/crisp-bench/src/bin/ablations.rs:
