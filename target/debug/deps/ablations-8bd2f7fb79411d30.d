/root/repo/target/debug/deps/ablations-8bd2f7fb79411d30.d: crates/crisp-bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-8bd2f7fb79411d30: crates/crisp-bench/src/bin/ablations.rs

crates/crisp-bench/src/bin/ablations.rs:
