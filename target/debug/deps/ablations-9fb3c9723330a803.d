/root/repo/target/debug/deps/ablations-9fb3c9723330a803.d: crates/crisp-bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-9fb3c9723330a803.rmeta: crates/crisp-bench/src/bin/ablations.rs Cargo.toml

crates/crisp-bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
