/root/repo/target/debug/deps/concurrency-810955b914233715.d: crates/crisp-core/../../tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-810955b914233715: crates/crisp-core/../../tests/concurrency.rs

crates/crisp-core/../../tests/concurrency.rs:
