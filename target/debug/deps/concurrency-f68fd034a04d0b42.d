/root/repo/target/debug/deps/concurrency-f68fd034a04d0b42.d: crates/crisp-core/../../tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-f68fd034a04d0b42.rmeta: crates/crisp-core/../../tests/concurrency.rs Cargo.toml

crates/crisp-core/../../tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
