/root/repo/target/debug/deps/crisp_bench-2c248a8d5e513f3d.d: crates/crisp-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_bench-2c248a8d5e513f3d.rmeta: crates/crisp-bench/src/lib.rs Cargo.toml

crates/crisp-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
