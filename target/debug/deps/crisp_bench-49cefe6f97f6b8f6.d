/root/repo/target/debug/deps/crisp_bench-49cefe6f97f6b8f6.d: crates/crisp-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_bench-49cefe6f97f6b8f6.rmeta: crates/crisp-bench/src/lib.rs Cargo.toml

crates/crisp-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
