/root/repo/target/debug/deps/crisp_bench-6295bfcdebb2a29a.d: crates/crisp-bench/src/lib.rs

/root/repo/target/debug/deps/crisp_bench-6295bfcdebb2a29a: crates/crisp-bench/src/lib.rs

crates/crisp-bench/src/lib.rs:
