/root/repo/target/debug/deps/crisp_bench-c379e9dbfe19e041.d: crates/crisp-bench/src/lib.rs

/root/repo/target/debug/deps/libcrisp_bench-c379e9dbfe19e041.rlib: crates/crisp-bench/src/lib.rs

/root/repo/target/debug/deps/libcrisp_bench-c379e9dbfe19e041.rmeta: crates/crisp-bench/src/lib.rs

crates/crisp-bench/src/lib.rs:
