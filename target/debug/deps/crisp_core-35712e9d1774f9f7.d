/root/repo/target/debug/deps/crisp_core-35712e9d1774f9f7.d: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

/root/repo/target/debug/deps/crisp_core-35712e9d1774f9f7: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

crates/crisp-core/src/lib.rs:
crates/crisp-core/src/experiments/mod.rs:
crates/crisp-core/src/experiments/ablations.rs:
crates/crisp-core/src/experiments/composition.rs:
crates/crisp-core/src/experiments/concurrent.rs:
crates/crisp-core/src/experiments/renders.rs:
crates/crisp-core/src/experiments/table02.rs:
crates/crisp-core/src/experiments/validation.rs:
crates/crisp-core/src/framerate.rs:
crates/crisp-core/src/qos.rs:
crates/crisp-core/src/report.rs:
