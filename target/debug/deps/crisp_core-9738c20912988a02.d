/root/repo/target/debug/deps/crisp_core-9738c20912988a02.d: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_core-9738c20912988a02.rmeta: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs Cargo.toml

crates/crisp-core/src/lib.rs:
crates/crisp-core/src/experiments/mod.rs:
crates/crisp-core/src/experiments/ablations.rs:
crates/crisp-core/src/experiments/composition.rs:
crates/crisp-core/src/experiments/concurrent.rs:
crates/crisp-core/src/experiments/renders.rs:
crates/crisp-core/src/experiments/table02.rs:
crates/crisp-core/src/experiments/validation.rs:
crates/crisp-core/src/framerate.rs:
crates/crisp-core/src/qos.rs:
crates/crisp-core/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
