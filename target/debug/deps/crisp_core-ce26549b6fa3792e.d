/root/repo/target/debug/deps/crisp_core-ce26549b6fa3792e.d: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

/root/repo/target/debug/deps/libcrisp_core-ce26549b6fa3792e.rlib: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

/root/repo/target/debug/deps/libcrisp_core-ce26549b6fa3792e.rmeta: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

crates/crisp-core/src/lib.rs:
crates/crisp-core/src/experiments/mod.rs:
crates/crisp-core/src/experiments/ablations.rs:
crates/crisp-core/src/experiments/composition.rs:
crates/crisp-core/src/experiments/concurrent.rs:
crates/crisp-core/src/experiments/renders.rs:
crates/crisp-core/src/experiments/table02.rs:
crates/crisp-core/src/experiments/validation.rs:
crates/crisp-core/src/framerate.rs:
crates/crisp-core/src/qos.rs:
crates/crisp-core/src/report.rs:
