/root/repo/target/debug/deps/crisp_gfx-1171ee662d96696c.d: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_gfx-1171ee662d96696c.rmeta: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs Cargo.toml

crates/crisp-gfx/src/lib.rs:
crates/crisp-gfx/src/api.rs:
crates/crisp-gfx/src/batch.rs:
crates/crisp-gfx/src/compute.rs:
crates/crisp-gfx/src/fb.rs:
crates/crisp-gfx/src/math.rs:
crates/crisp-gfx/src/mesh.rs:
crates/crisp-gfx/src/pipeline.rs:
crates/crisp-gfx/src/raster.rs:
crates/crisp-gfx/src/shader.rs:
crates/crisp-gfx/src/texture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
