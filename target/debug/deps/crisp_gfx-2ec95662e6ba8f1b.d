/root/repo/target/debug/deps/crisp_gfx-2ec95662e6ba8f1b.d: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs

/root/repo/target/debug/deps/libcrisp_gfx-2ec95662e6ba8f1b.rlib: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs

/root/repo/target/debug/deps/libcrisp_gfx-2ec95662e6ba8f1b.rmeta: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs

crates/crisp-gfx/src/lib.rs:
crates/crisp-gfx/src/api.rs:
crates/crisp-gfx/src/batch.rs:
crates/crisp-gfx/src/compute.rs:
crates/crisp-gfx/src/fb.rs:
crates/crisp-gfx/src/math.rs:
crates/crisp-gfx/src/mesh.rs:
crates/crisp-gfx/src/pipeline.rs:
crates/crisp-gfx/src/raster.rs:
crates/crisp-gfx/src/shader.rs:
crates/crisp-gfx/src/texture.rs:
