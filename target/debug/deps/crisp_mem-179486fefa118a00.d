/root/repo/target/debug/deps/crisp_mem-179486fefa118a00.d: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_mem-179486fefa118a00.rmeta: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs Cargo.toml

crates/crisp-mem/src/lib.rs:
crates/crisp-mem/src/cache.rs:
crates/crisp-mem/src/dram.rs:
crates/crisp-mem/src/l2.rs:
crates/crisp-mem/src/mshr.rs:
crates/crisp-mem/src/partition.rs:
crates/crisp-mem/src/port.rs:
crates/crisp-mem/src/req.rs:
crates/crisp-mem/src/stats.rs:
crates/crisp-mem/src/system.rs:
crates/crisp-mem/src/xbar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
