/root/repo/target/debug/deps/crisp_mem-5eda0f37b2b1fb5a.d: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs

/root/repo/target/debug/deps/libcrisp_mem-5eda0f37b2b1fb5a.rlib: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs

/root/repo/target/debug/deps/libcrisp_mem-5eda0f37b2b1fb5a.rmeta: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs

crates/crisp-mem/src/lib.rs:
crates/crisp-mem/src/cache.rs:
crates/crisp-mem/src/dram.rs:
crates/crisp-mem/src/l2.rs:
crates/crisp-mem/src/mshr.rs:
crates/crisp-mem/src/partition.rs:
crates/crisp-mem/src/port.rs:
crates/crisp-mem/src/req.rs:
crates/crisp-mem/src/stats.rs:
crates/crisp-mem/src/system.rs:
crates/crisp-mem/src/xbar.rs:
