/root/repo/target/debug/deps/crisp_scenes-0c8eced31e2ac0e6.d: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_scenes-0c8eced31e2ac0e6.rmeta: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs Cargo.toml

crates/crisp-scenes/src/lib.rs:
crates/crisp-scenes/src/compute.rs:
crates/crisp-scenes/src/primitives.rs:
crates/crisp-scenes/src/scenes.rs:
crates/crisp-scenes/src/silicon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
