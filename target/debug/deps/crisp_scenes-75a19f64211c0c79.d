/root/repo/target/debug/deps/crisp_scenes-75a19f64211c0c79.d: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

/root/repo/target/debug/deps/crisp_scenes-75a19f64211c0c79: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

crates/crisp-scenes/src/lib.rs:
crates/crisp-scenes/src/compute.rs:
crates/crisp-scenes/src/primitives.rs:
crates/crisp-scenes/src/scenes.rs:
crates/crisp-scenes/src/silicon.rs:
