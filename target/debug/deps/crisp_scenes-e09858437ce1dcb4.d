/root/repo/target/debug/deps/crisp_scenes-e09858437ce1dcb4.d: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

/root/repo/target/debug/deps/libcrisp_scenes-e09858437ce1dcb4.rlib: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

/root/repo/target/debug/deps/libcrisp_scenes-e09858437ce1dcb4.rmeta: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

crates/crisp-scenes/src/lib.rs:
crates/crisp-scenes/src/compute.rs:
crates/crisp-scenes/src/primitives.rs:
crates/crisp-scenes/src/scenes.rs:
crates/crisp-scenes/src/silicon.rs:
