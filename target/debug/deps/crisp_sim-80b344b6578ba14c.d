/root/repo/target/debug/deps/crisp_sim-80b344b6578ba14c.d: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

/root/repo/target/debug/deps/libcrisp_sim-80b344b6578ba14c.rlib: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

/root/repo/target/debug/deps/libcrisp_sim-80b344b6578ba14c.rmeta: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

crates/crisp-sim/src/lib.rs:
crates/crisp-sim/src/config.rs:
crates/crisp-sim/src/gpu.rs:
crates/crisp-sim/src/policy.rs:
crates/crisp-sim/src/sim.rs:
crates/crisp-sim/src/slicer.rs:
crates/crisp-sim/src/stats.rs:
