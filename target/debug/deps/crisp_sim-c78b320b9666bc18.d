/root/repo/target/debug/deps/crisp_sim-c78b320b9666bc18.d: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_sim-c78b320b9666bc18.rmeta: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs Cargo.toml

crates/crisp-sim/src/lib.rs:
crates/crisp-sim/src/config.rs:
crates/crisp-sim/src/gpu.rs:
crates/crisp-sim/src/policy.rs:
crates/crisp-sim/src/sim.rs:
crates/crisp-sim/src/slicer.rs:
crates/crisp-sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
