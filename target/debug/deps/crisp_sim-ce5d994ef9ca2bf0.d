/root/repo/target/debug/deps/crisp_sim-ce5d994ef9ca2bf0.d: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

/root/repo/target/debug/deps/crisp_sim-ce5d994ef9ca2bf0: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

crates/crisp-sim/src/lib.rs:
crates/crisp-sim/src/config.rs:
crates/crisp-sim/src/gpu.rs:
crates/crisp-sim/src/policy.rs:
crates/crisp-sim/src/sim.rs:
crates/crisp-sim/src/slicer.rs:
crates/crisp-sim/src/stats.rs:
