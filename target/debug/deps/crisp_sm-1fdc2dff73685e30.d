/root/repo/target/debug/deps/crisp_sm-1fdc2dff73685e30.d: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

/root/repo/target/debug/deps/libcrisp_sm-1fdc2dff73685e30.rlib: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

/root/repo/target/debug/deps/libcrisp_sm-1fdc2dff73685e30.rmeta: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

crates/crisp-sm/src/lib.rs:
crates/crisp-sm/src/config.rs:
crates/crisp-sm/src/cta.rs:
crates/crisp-sm/src/lsu.rs:
crates/crisp-sm/src/sm.rs:
crates/crisp-sm/src/units.rs:
crates/crisp-sm/src/warp.rs:
