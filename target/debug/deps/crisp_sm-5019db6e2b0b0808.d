/root/repo/target/debug/deps/crisp_sm-5019db6e2b0b0808.d: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_sm-5019db6e2b0b0808.rmeta: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs Cargo.toml

crates/crisp-sm/src/lib.rs:
crates/crisp-sm/src/config.rs:
crates/crisp-sm/src/cta.rs:
crates/crisp-sm/src/lsu.rs:
crates/crisp-sm/src/sm.rs:
crates/crisp-sm/src/units.rs:
crates/crisp-sm/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
