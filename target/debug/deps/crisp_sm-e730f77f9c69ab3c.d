/root/repo/target/debug/deps/crisp_sm-e730f77f9c69ab3c.d: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

/root/repo/target/debug/deps/crisp_sm-e730f77f9c69ab3c: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

crates/crisp-sm/src/lib.rs:
crates/crisp-sm/src/config.rs:
crates/crisp-sm/src/cta.rs:
crates/crisp-sm/src/lsu.rs:
crates/crisp-sm/src/sm.rs:
crates/crisp-sm/src/units.rs:
crates/crisp-sm/src/warp.rs:
