/root/repo/target/debug/deps/crisp_trace-03f40727157e2c38.d: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

/root/repo/target/debug/deps/crisp_trace-03f40727157e2c38: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

crates/crisp-trace/src/lib.rs:
crates/crisp-trace/src/analysis.rs:
crates/crisp-trace/src/codec.rs:
crates/crisp-trace/src/isa.rs:
crates/crisp-trace/src/kernel.rs:
crates/crisp-trace/src/stream.rs:
