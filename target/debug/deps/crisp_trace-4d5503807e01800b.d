/root/repo/target/debug/deps/crisp_trace-4d5503807e01800b.d: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

/root/repo/target/debug/deps/libcrisp_trace-4d5503807e01800b.rlib: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

/root/repo/target/debug/deps/libcrisp_trace-4d5503807e01800b.rmeta: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

crates/crisp-trace/src/lib.rs:
crates/crisp-trace/src/analysis.rs:
crates/crisp-trace/src/codec.rs:
crates/crisp-trace/src/isa.rs:
crates/crisp-trace/src/kernel.rs:
crates/crisp-trace/src/stream.rs:
