/root/repo/target/debug/deps/crisp_trace-b9ab39d1ce4f063f.d: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libcrisp_trace-b9ab39d1ce4f063f.rmeta: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs Cargo.toml

crates/crisp-trace/src/lib.rs:
crates/crisp-trace/src/analysis.rs:
crates/crisp-trace/src/codec.rs:
crates/crisp-trace/src/isa.rs:
crates/crisp-trace/src/kernel.rs:
crates/crisp-trace/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
