/root/repo/target/debug/deps/determinism-2f8ca495d8fe621b.d: crates/crisp-core/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-2f8ca495d8fe621b: crates/crisp-core/../../tests/determinism.rs

crates/crisp-core/../../tests/determinism.rs:
