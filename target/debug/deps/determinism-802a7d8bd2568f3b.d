/root/repo/target/debug/deps/determinism-802a7d8bd2568f3b.d: crates/crisp-core/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-802a7d8bd2568f3b.rmeta: crates/crisp-core/../../tests/determinism.rs Cargo.toml

crates/crisp-core/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
