/root/repo/target/debug/deps/end_to_end-305a17dab5dfe382.d: crates/crisp-core/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-305a17dab5dfe382.rmeta: crates/crisp-core/../../tests/end_to_end.rs Cargo.toml

crates/crisp-core/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
