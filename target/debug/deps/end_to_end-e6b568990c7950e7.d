/root/repo/target/debug/deps/end_to_end-e6b568990c7950e7.d: crates/crisp-core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e6b568990c7950e7: crates/crisp-core/../../tests/end_to_end.rs

crates/crisp-core/../../tests/end_to_end.rs:
