/root/repo/target/debug/deps/fig03_vertex_batching-4c2299a00c24976f.d: crates/crisp-bench/src/bin/fig03_vertex_batching.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_vertex_batching-4c2299a00c24976f.rmeta: crates/crisp-bench/src/bin/fig03_vertex_batching.rs Cargo.toml

crates/crisp-bench/src/bin/fig03_vertex_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
