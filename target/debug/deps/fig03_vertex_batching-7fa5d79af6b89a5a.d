/root/repo/target/debug/deps/fig03_vertex_batching-7fa5d79af6b89a5a.d: crates/crisp-bench/src/bin/fig03_vertex_batching.rs

/root/repo/target/debug/deps/fig03_vertex_batching-7fa5d79af6b89a5a: crates/crisp-bench/src/bin/fig03_vertex_batching.rs

crates/crisp-bench/src/bin/fig03_vertex_batching.rs:
