/root/repo/target/debug/deps/fig03_vertex_batching-b9c1ff0b4331f533.d: crates/crisp-bench/src/bin/fig03_vertex_batching.rs

/root/repo/target/debug/deps/fig03_vertex_batching-b9c1ff0b4331f533: crates/crisp-bench/src/bin/fig03_vertex_batching.rs

crates/crisp-bench/src/bin/fig03_vertex_batching.rs:
