/root/repo/target/debug/deps/fig05_render_planets-86fbd07fb800d6b5.d: crates/crisp-bench/src/bin/fig05_render_planets.rs

/root/repo/target/debug/deps/fig05_render_planets-86fbd07fb800d6b5: crates/crisp-bench/src/bin/fig05_render_planets.rs

crates/crisp-bench/src/bin/fig05_render_planets.rs:
