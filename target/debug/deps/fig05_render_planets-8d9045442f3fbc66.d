/root/repo/target/debug/deps/fig05_render_planets-8d9045442f3fbc66.d: crates/crisp-bench/src/bin/fig05_render_planets.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_render_planets-8d9045442f3fbc66.rmeta: crates/crisp-bench/src/bin/fig05_render_planets.rs Cargo.toml

crates/crisp-bench/src/bin/fig05_render_planets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
