/root/repo/target/debug/deps/fig05_render_planets-d29c7f92cd39ee51.d: crates/crisp-bench/src/bin/fig05_render_planets.rs

/root/repo/target/debug/deps/fig05_render_planets-d29c7f92cd39ee51: crates/crisp-bench/src/bin/fig05_render_planets.rs

crates/crisp-bench/src/bin/fig05_render_planets.rs:
