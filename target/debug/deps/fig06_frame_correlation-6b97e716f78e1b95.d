/root/repo/target/debug/deps/fig06_frame_correlation-6b97e716f78e1b95.d: crates/crisp-bench/src/bin/fig06_frame_correlation.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_frame_correlation-6b97e716f78e1b95.rmeta: crates/crisp-bench/src/bin/fig06_frame_correlation.rs Cargo.toml

crates/crisp-bench/src/bin/fig06_frame_correlation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
