/root/repo/target/debug/deps/fig06_frame_correlation-9926fe9a1c7e95a9.d: crates/crisp-bench/src/bin/fig06_frame_correlation.rs

/root/repo/target/debug/deps/fig06_frame_correlation-9926fe9a1c7e95a9: crates/crisp-bench/src/bin/fig06_frame_correlation.rs

crates/crisp-bench/src/bin/fig06_frame_correlation.rs:
