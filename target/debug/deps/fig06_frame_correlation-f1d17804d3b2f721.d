/root/repo/target/debug/deps/fig06_frame_correlation-f1d17804d3b2f721.d: crates/crisp-bench/src/bin/fig06_frame_correlation.rs

/root/repo/target/debug/deps/fig06_frame_correlation-f1d17804d3b2f721: crates/crisp-bench/src/bin/fig06_frame_correlation.rs

crates/crisp-bench/src/bin/fig06_frame_correlation.rs:
