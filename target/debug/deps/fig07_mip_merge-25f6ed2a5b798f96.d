/root/repo/target/debug/deps/fig07_mip_merge-25f6ed2a5b798f96.d: crates/crisp-bench/src/bin/fig07_mip_merge.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_mip_merge-25f6ed2a5b798f96.rmeta: crates/crisp-bench/src/bin/fig07_mip_merge.rs Cargo.toml

crates/crisp-bench/src/bin/fig07_mip_merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
