/root/repo/target/debug/deps/fig07_mip_merge-83b2845683f1cc1f.d: crates/crisp-bench/src/bin/fig07_mip_merge.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_mip_merge-83b2845683f1cc1f.rmeta: crates/crisp-bench/src/bin/fig07_mip_merge.rs Cargo.toml

crates/crisp-bench/src/bin/fig07_mip_merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
