/root/repo/target/debug/deps/fig07_mip_merge-a4580aba56ef80bb.d: crates/crisp-bench/src/bin/fig07_mip_merge.rs

/root/repo/target/debug/deps/fig07_mip_merge-a4580aba56ef80bb: crates/crisp-bench/src/bin/fig07_mip_merge.rs

crates/crisp-bench/src/bin/fig07_mip_merge.rs:
