/root/repo/target/debug/deps/fig07_mip_merge-f363978f317d5c7c.d: crates/crisp-bench/src/bin/fig07_mip_merge.rs

/root/repo/target/debug/deps/fig07_mip_merge-f363978f317d5c7c: crates/crisp-bench/src/bin/fig07_mip_merge.rs

crates/crisp-bench/src/bin/fig07_mip_merge.rs:
