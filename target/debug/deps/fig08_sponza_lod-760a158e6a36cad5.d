/root/repo/target/debug/deps/fig08_sponza_lod-760a158e6a36cad5.d: crates/crisp-bench/src/bin/fig08_sponza_lod.rs

/root/repo/target/debug/deps/fig08_sponza_lod-760a158e6a36cad5: crates/crisp-bench/src/bin/fig08_sponza_lod.rs

crates/crisp-bench/src/bin/fig08_sponza_lod.rs:
