/root/repo/target/debug/deps/fig08_sponza_lod-7c3e7d37224f363b.d: crates/crisp-bench/src/bin/fig08_sponza_lod.rs

/root/repo/target/debug/deps/fig08_sponza_lod-7c3e7d37224f363b: crates/crisp-bench/src/bin/fig08_sponza_lod.rs

crates/crisp-bench/src/bin/fig08_sponza_lod.rs:
