/root/repo/target/debug/deps/fig08_sponza_lod-b43a84887c254f2d.d: crates/crisp-bench/src/bin/fig08_sponza_lod.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_sponza_lod-b43a84887c254f2d.rmeta: crates/crisp-bench/src/bin/fig08_sponza_lod.rs Cargo.toml

crates/crisp-bench/src/bin/fig08_sponza_lod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
