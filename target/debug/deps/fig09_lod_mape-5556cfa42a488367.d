/root/repo/target/debug/deps/fig09_lod_mape-5556cfa42a488367.d: crates/crisp-bench/src/bin/fig09_lod_mape.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_lod_mape-5556cfa42a488367.rmeta: crates/crisp-bench/src/bin/fig09_lod_mape.rs Cargo.toml

crates/crisp-bench/src/bin/fig09_lod_mape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
