/root/repo/target/debug/deps/fig09_lod_mape-7e1219a45bb8c928.d: crates/crisp-bench/src/bin/fig09_lod_mape.rs

/root/repo/target/debug/deps/fig09_lod_mape-7e1219a45bb8c928: crates/crisp-bench/src/bin/fig09_lod_mape.rs

crates/crisp-bench/src/bin/fig09_lod_mape.rs:
