/root/repo/target/debug/deps/fig09_lod_mape-91a966cfab39cc4e.d: crates/crisp-bench/src/bin/fig09_lod_mape.rs

/root/repo/target/debug/deps/fig09_lod_mape-91a966cfab39cc4e: crates/crisp-bench/src/bin/fig09_lod_mape.rs

crates/crisp-bench/src/bin/fig09_lod_mape.rs:
