/root/repo/target/debug/deps/fig10_texlines_histogram-6b9601614c3774c8.d: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_texlines_histogram-6b9601614c3774c8.rmeta: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs Cargo.toml

crates/crisp-bench/src/bin/fig10_texlines_histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
