/root/repo/target/debug/deps/fig10_texlines_histogram-a4a90dbacae5275b.d: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs

/root/repo/target/debug/deps/fig10_texlines_histogram-a4a90dbacae5275b: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs

crates/crisp-bench/src/bin/fig10_texlines_histogram.rs:
