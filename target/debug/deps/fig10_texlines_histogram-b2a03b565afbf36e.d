/root/repo/target/debug/deps/fig10_texlines_histogram-b2a03b565afbf36e.d: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs

/root/repo/target/debug/deps/fig10_texlines_histogram-b2a03b565afbf36e: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs

crates/crisp-bench/src/bin/fig10_texlines_histogram.rs:
