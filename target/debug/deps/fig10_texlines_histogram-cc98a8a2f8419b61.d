/root/repo/target/debug/deps/fig10_texlines_histogram-cc98a8a2f8419b61.d: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_texlines_histogram-cc98a8a2f8419b61.rmeta: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs Cargo.toml

crates/crisp-bench/src/bin/fig10_texlines_histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
