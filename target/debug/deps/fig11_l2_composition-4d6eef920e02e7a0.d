/root/repo/target/debug/deps/fig11_l2_composition-4d6eef920e02e7a0.d: crates/crisp-bench/src/bin/fig11_l2_composition.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_l2_composition-4d6eef920e02e7a0.rmeta: crates/crisp-bench/src/bin/fig11_l2_composition.rs Cargo.toml

crates/crisp-bench/src/bin/fig11_l2_composition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
