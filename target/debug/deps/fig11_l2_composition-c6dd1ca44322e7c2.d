/root/repo/target/debug/deps/fig11_l2_composition-c6dd1ca44322e7c2.d: crates/crisp-bench/src/bin/fig11_l2_composition.rs

/root/repo/target/debug/deps/fig11_l2_composition-c6dd1ca44322e7c2: crates/crisp-bench/src/bin/fig11_l2_composition.rs

crates/crisp-bench/src/bin/fig11_l2_composition.rs:
