/root/repo/target/debug/deps/fig11_l2_composition-ebcd201d6b23a714.d: crates/crisp-bench/src/bin/fig11_l2_composition.rs

/root/repo/target/debug/deps/fig11_l2_composition-ebcd201d6b23a714: crates/crisp-bench/src/bin/fig11_l2_composition.rs

crates/crisp-bench/src/bin/fig11_l2_composition.rs:
