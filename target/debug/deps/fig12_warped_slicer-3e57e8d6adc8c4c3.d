/root/repo/target/debug/deps/fig12_warped_slicer-3e57e8d6adc8c4c3.d: crates/crisp-bench/src/bin/fig12_warped_slicer.rs

/root/repo/target/debug/deps/fig12_warped_slicer-3e57e8d6adc8c4c3: crates/crisp-bench/src/bin/fig12_warped_slicer.rs

crates/crisp-bench/src/bin/fig12_warped_slicer.rs:
