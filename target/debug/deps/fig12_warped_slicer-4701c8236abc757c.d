/root/repo/target/debug/deps/fig12_warped_slicer-4701c8236abc757c.d: crates/crisp-bench/src/bin/fig12_warped_slicer.rs

/root/repo/target/debug/deps/fig12_warped_slicer-4701c8236abc757c: crates/crisp-bench/src/bin/fig12_warped_slicer.rs

crates/crisp-bench/src/bin/fig12_warped_slicer.rs:
