/root/repo/target/debug/deps/fig12_warped_slicer-9d9a6b4a610f7ae7.d: crates/crisp-bench/src/bin/fig12_warped_slicer.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_warped_slicer-9d9a6b4a610f7ae7.rmeta: crates/crisp-bench/src/bin/fig12_warped_slicer.rs Cargo.toml

crates/crisp-bench/src/bin/fig12_warped_slicer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
