/root/repo/target/debug/deps/fig13_occupancy_timeline-6c9878ef2c5334e0.d: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_occupancy_timeline-6c9878ef2c5334e0.rmeta: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs Cargo.toml

crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
