/root/repo/target/debug/deps/fig13_occupancy_timeline-7bd2f6f1b0feb58f.d: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_occupancy_timeline-7bd2f6f1b0feb58f.rmeta: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs Cargo.toml

crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
