/root/repo/target/debug/deps/fig13_occupancy_timeline-913e04a3c43cb993.d: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs

/root/repo/target/debug/deps/fig13_occupancy_timeline-913e04a3c43cb993: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs

crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs:
