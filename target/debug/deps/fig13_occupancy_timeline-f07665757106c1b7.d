/root/repo/target/debug/deps/fig13_occupancy_timeline-f07665757106c1b7.d: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs

/root/repo/target/debug/deps/fig13_occupancy_timeline-f07665757106c1b7: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs

crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs:
