/root/repo/target/debug/deps/fig14_tap-a729e7809d63e147.d: crates/crisp-bench/src/bin/fig14_tap.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_tap-a729e7809d63e147.rmeta: crates/crisp-bench/src/bin/fig14_tap.rs Cargo.toml

crates/crisp-bench/src/bin/fig14_tap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
