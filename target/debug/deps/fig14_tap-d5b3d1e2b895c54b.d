/root/repo/target/debug/deps/fig14_tap-d5b3d1e2b895c54b.d: crates/crisp-bench/src/bin/fig14_tap.rs

/root/repo/target/debug/deps/fig14_tap-d5b3d1e2b895c54b: crates/crisp-bench/src/bin/fig14_tap.rs

crates/crisp-bench/src/bin/fig14_tap.rs:
