/root/repo/target/debug/deps/fig14_tap-e97dd89066ccb756.d: crates/crisp-bench/src/bin/fig14_tap.rs

/root/repo/target/debug/deps/fig14_tap-e97dd89066ccb756: crates/crisp-bench/src/bin/fig14_tap.rs

crates/crisp-bench/src/bin/fig14_tap.rs:
