/root/repo/target/debug/deps/fig15_tap_composition-97263ed4e0a3812c.d: crates/crisp-bench/src/bin/fig15_tap_composition.rs

/root/repo/target/debug/deps/fig15_tap_composition-97263ed4e0a3812c: crates/crisp-bench/src/bin/fig15_tap_composition.rs

crates/crisp-bench/src/bin/fig15_tap_composition.rs:
