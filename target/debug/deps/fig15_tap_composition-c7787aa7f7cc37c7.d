/root/repo/target/debug/deps/fig15_tap_composition-c7787aa7f7cc37c7.d: crates/crisp-bench/src/bin/fig15_tap_composition.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_tap_composition-c7787aa7f7cc37c7.rmeta: crates/crisp-bench/src/bin/fig15_tap_composition.rs Cargo.toml

crates/crisp-bench/src/bin/fig15_tap_composition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
