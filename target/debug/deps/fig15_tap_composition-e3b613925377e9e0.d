/root/repo/target/debug/deps/fig15_tap_composition-e3b613925377e9e0.d: crates/crisp-bench/src/bin/fig15_tap_composition.rs

/root/repo/target/debug/deps/fig15_tap_composition-e3b613925377e9e0: crates/crisp-bench/src/bin/fig15_tap_composition.rs

crates/crisp-bench/src/bin/fig15_tap_composition.rs:
