/root/repo/target/debug/deps/properties-40e8748b8c2c3811.d: crates/crisp-core/../../tests/properties.rs

/root/repo/target/debug/deps/properties-40e8748b8c2c3811: crates/crisp-core/../../tests/properties.rs

crates/crisp-core/../../tests/properties.rs:
