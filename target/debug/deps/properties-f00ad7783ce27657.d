/root/repo/target/debug/deps/properties-f00ad7783ce27657.d: crates/crisp-core/../../tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f00ad7783ce27657.rmeta: crates/crisp-core/../../tests/properties.rs Cargo.toml

crates/crisp-core/../../tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
