/root/repo/target/debug/deps/run_all-4fb130c93640c7d3.d: crates/crisp-bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-4fb130c93640c7d3.rmeta: crates/crisp-bench/src/bin/run_all.rs Cargo.toml

crates/crisp-bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
