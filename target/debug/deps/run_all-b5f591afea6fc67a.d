/root/repo/target/debug/deps/run_all-b5f591afea6fc67a.d: crates/crisp-bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-b5f591afea6fc67a: crates/crisp-bench/src/bin/run_all.rs

crates/crisp-bench/src/bin/run_all.rs:
