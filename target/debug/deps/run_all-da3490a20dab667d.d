/root/repo/target/debug/deps/run_all-da3490a20dab667d.d: crates/crisp-bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-da3490a20dab667d: crates/crisp-bench/src/bin/run_all.rs

crates/crisp-bench/src/bin/run_all.rs:
