/root/repo/target/debug/deps/run_all-e296da921595e3bc.d: crates/crisp-bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-e296da921595e3bc.rmeta: crates/crisp-bench/src/bin/run_all.rs Cargo.toml

crates/crisp-bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
