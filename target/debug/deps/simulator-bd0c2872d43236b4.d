/root/repo/target/debug/deps/simulator-bd0c2872d43236b4.d: crates/crisp-bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-bd0c2872d43236b4.rmeta: crates/crisp-bench/benches/simulator.rs Cargo.toml

crates/crisp-bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
