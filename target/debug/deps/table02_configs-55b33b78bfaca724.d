/root/repo/target/debug/deps/table02_configs-55b33b78bfaca724.d: crates/crisp-bench/src/bin/table02_configs.rs Cargo.toml

/root/repo/target/debug/deps/libtable02_configs-55b33b78bfaca724.rmeta: crates/crisp-bench/src/bin/table02_configs.rs Cargo.toml

crates/crisp-bench/src/bin/table02_configs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
