/root/repo/target/debug/deps/table02_configs-5e1006974a5d507e.d: crates/crisp-bench/src/bin/table02_configs.rs

/root/repo/target/debug/deps/table02_configs-5e1006974a5d507e: crates/crisp-bench/src/bin/table02_configs.rs

crates/crisp-bench/src/bin/table02_configs.rs:
