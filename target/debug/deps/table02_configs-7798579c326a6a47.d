/root/repo/target/debug/deps/table02_configs-7798579c326a6a47.d: crates/crisp-bench/src/bin/table02_configs.rs

/root/repo/target/debug/deps/table02_configs-7798579c326a6a47: crates/crisp-bench/src/bin/table02_configs.rs

crates/crisp-bench/src/bin/table02_configs.rs:
