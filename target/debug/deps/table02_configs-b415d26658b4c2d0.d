/root/repo/target/debug/deps/table02_configs-b415d26658b4c2d0.d: crates/crisp-bench/src/bin/table02_configs.rs Cargo.toml

/root/repo/target/debug/deps/libtable02_configs-b415d26658b4c2d0.rmeta: crates/crisp-bench/src/bin/table02_configs.rs Cargo.toml

crates/crisp-bench/src/bin/table02_configs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
