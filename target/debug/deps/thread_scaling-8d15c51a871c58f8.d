/root/repo/target/debug/deps/thread_scaling-8d15c51a871c58f8.d: crates/crisp-bench/src/bin/thread_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libthread_scaling-8d15c51a871c58f8.rmeta: crates/crisp-bench/src/bin/thread_scaling.rs Cargo.toml

crates/crisp-bench/src/bin/thread_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
