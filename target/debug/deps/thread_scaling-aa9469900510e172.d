/root/repo/target/debug/deps/thread_scaling-aa9469900510e172.d: crates/crisp-bench/src/bin/thread_scaling.rs

/root/repo/target/debug/deps/thread_scaling-aa9469900510e172: crates/crisp-bench/src/bin/thread_scaling.rs

crates/crisp-bench/src/bin/thread_scaling.rs:
