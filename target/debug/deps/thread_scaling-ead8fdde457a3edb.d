/root/repo/target/debug/deps/thread_scaling-ead8fdde457a3edb.d: crates/crisp-bench/src/bin/thread_scaling.rs

/root/repo/target/debug/deps/thread_scaling-ead8fdde457a3edb: crates/crisp-bench/src/bin/thread_scaling.rs

crates/crisp-bench/src/bin/thread_scaling.rs:
