/root/repo/target/debug/deps/trace_stats-0fe8a1de5555a6fc.d: crates/crisp-bench/src/bin/trace_stats.rs

/root/repo/target/debug/deps/trace_stats-0fe8a1de5555a6fc: crates/crisp-bench/src/bin/trace_stats.rs

crates/crisp-bench/src/bin/trace_stats.rs:
