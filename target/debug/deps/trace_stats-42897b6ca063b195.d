/root/repo/target/debug/deps/trace_stats-42897b6ca063b195.d: crates/crisp-bench/src/bin/trace_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_stats-42897b6ca063b195.rmeta: crates/crisp-bench/src/bin/trace_stats.rs Cargo.toml

crates/crisp-bench/src/bin/trace_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
