/root/repo/target/debug/deps/trace_stats-614ec408d298d9fd.d: crates/crisp-bench/src/bin/trace_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_stats-614ec408d298d9fd.rmeta: crates/crisp-bench/src/bin/trace_stats.rs Cargo.toml

crates/crisp-bench/src/bin/trace_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
