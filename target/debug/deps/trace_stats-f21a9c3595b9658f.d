/root/repo/target/debug/deps/trace_stats-f21a9c3595b9658f.d: crates/crisp-bench/src/bin/trace_stats.rs

/root/repo/target/debug/deps/trace_stats-f21a9c3595b9658f: crates/crisp-bench/src/bin/trace_stats.rs

crates/crisp-bench/src/bin/trace_stats.rs:
