/root/repo/target/debug/deps/validate-17cfbdce6694c6f7.d: crates/crisp-bench/src/bin/validate.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate-17cfbdce6694c6f7.rmeta: crates/crisp-bench/src/bin/validate.rs Cargo.toml

crates/crisp-bench/src/bin/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
