/root/repo/target/debug/deps/validate-49f099a66cbccf9d.d: crates/crisp-bench/src/bin/validate.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate-49f099a66cbccf9d.rmeta: crates/crisp-bench/src/bin/validate.rs Cargo.toml

crates/crisp-bench/src/bin/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
