/root/repo/target/debug/deps/validate-5fbd447432202a3b.d: crates/crisp-bench/src/bin/validate.rs

/root/repo/target/debug/deps/validate-5fbd447432202a3b: crates/crisp-bench/src/bin/validate.rs

crates/crisp-bench/src/bin/validate.rs:
