/root/repo/target/debug/deps/validate-eedaa65f3cc9b022.d: crates/crisp-bench/src/bin/validate.rs

/root/repo/target/debug/deps/validate-eedaa65f3cc9b022: crates/crisp-bench/src/bin/validate.rs

crates/crisp-bench/src/bin/validate.rs:
