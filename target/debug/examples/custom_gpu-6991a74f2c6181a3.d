/root/repo/target/debug/examples/custom_gpu-6991a74f2c6181a3.d: crates/crisp-core/../../examples/custom_gpu.rs

/root/repo/target/debug/examples/custom_gpu-6991a74f2c6181a3: crates/crisp-core/../../examples/custom_gpu.rs

crates/crisp-core/../../examples/custom_gpu.rs:
