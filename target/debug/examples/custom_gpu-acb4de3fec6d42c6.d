/root/repo/target/debug/examples/custom_gpu-acb4de3fec6d42c6.d: crates/crisp-core/../../examples/custom_gpu.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_gpu-acb4de3fec6d42c6.rmeta: crates/crisp-core/../../examples/custom_gpu.rs Cargo.toml

crates/crisp-core/../../examples/custom_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
