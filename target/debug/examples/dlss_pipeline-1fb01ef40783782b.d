/root/repo/target/debug/examples/dlss_pipeline-1fb01ef40783782b.d: crates/crisp-core/../../examples/dlss_pipeline.rs

/root/repo/target/debug/examples/dlss_pipeline-1fb01ef40783782b: crates/crisp-core/../../examples/dlss_pipeline.rs

crates/crisp-core/../../examples/dlss_pipeline.rs:
