/root/repo/target/debug/examples/dlss_pipeline-4742c99d23cb6d9f.d: crates/crisp-core/../../examples/dlss_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libdlss_pipeline-4742c99d23cb6d9f.rmeta: crates/crisp-core/../../examples/dlss_pipeline.rs Cargo.toml

crates/crisp-core/../../examples/dlss_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
