/root/repo/target/debug/examples/framerate-8a87f7890a6cb148.d: crates/crisp-core/../../examples/framerate.rs Cargo.toml

/root/repo/target/debug/examples/libframerate-8a87f7890a6cb148.rmeta: crates/crisp-core/../../examples/framerate.rs Cargo.toml

crates/crisp-core/../../examples/framerate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
