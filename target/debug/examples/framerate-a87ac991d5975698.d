/root/repo/target/debug/examples/framerate-a87ac991d5975698.d: crates/crisp-core/../../examples/framerate.rs

/root/repo/target/debug/examples/framerate-a87ac991d5975698: crates/crisp-core/../../examples/framerate.rs

crates/crisp-core/../../examples/framerate.rs:
