/root/repo/target/debug/examples/mr_async_compute-391de0d29c214285.d: crates/crisp-core/../../examples/mr_async_compute.rs

/root/repo/target/debug/examples/mr_async_compute-391de0d29c214285: crates/crisp-core/../../examples/mr_async_compute.rs

crates/crisp-core/../../examples/mr_async_compute.rs:
