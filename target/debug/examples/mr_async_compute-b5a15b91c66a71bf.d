/root/repo/target/debug/examples/mr_async_compute-b5a15b91c66a71bf.d: crates/crisp-core/../../examples/mr_async_compute.rs Cargo.toml

/root/repo/target/debug/examples/libmr_async_compute-b5a15b91c66a71bf.rmeta: crates/crisp-core/../../examples/mr_async_compute.rs Cargo.toml

crates/crisp-core/../../examples/mr_async_compute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
