/root/repo/target/debug/examples/partitioning_study-179eca1ba77f6651.d: crates/crisp-core/../../examples/partitioning_study.rs Cargo.toml

/root/repo/target/debug/examples/libpartitioning_study-179eca1ba77f6651.rmeta: crates/crisp-core/../../examples/partitioning_study.rs Cargo.toml

crates/crisp-core/../../examples/partitioning_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
