/root/repo/target/debug/examples/partitioning_study-d1fc0e8be46c95e1.d: crates/crisp-core/../../examples/partitioning_study.rs

/root/repo/target/debug/examples/partitioning_study-d1fc0e8be46c95e1: crates/crisp-core/../../examples/partitioning_study.rs

crates/crisp-core/../../examples/partitioning_study.rs:
