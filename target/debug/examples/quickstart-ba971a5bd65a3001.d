/root/repo/target/debug/examples/quickstart-ba971a5bd65a3001.d: crates/crisp-core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ba971a5bd65a3001: crates/crisp-core/../../examples/quickstart.rs

crates/crisp-core/../../examples/quickstart.rs:
