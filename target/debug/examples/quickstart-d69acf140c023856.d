/root/repo/target/debug/examples/quickstart-d69acf140c023856.d: crates/crisp-core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d69acf140c023856.rmeta: crates/crisp-core/../../examples/quickstart.rs Cargo.toml

crates/crisp-core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
