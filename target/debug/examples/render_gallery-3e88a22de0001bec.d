/root/repo/target/debug/examples/render_gallery-3e88a22de0001bec.d: crates/crisp-core/../../examples/render_gallery.rs Cargo.toml

/root/repo/target/debug/examples/librender_gallery-3e88a22de0001bec.rmeta: crates/crisp-core/../../examples/render_gallery.rs Cargo.toml

crates/crisp-core/../../examples/render_gallery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
