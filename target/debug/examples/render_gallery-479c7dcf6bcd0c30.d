/root/repo/target/debug/examples/render_gallery-479c7dcf6bcd0c30.d: crates/crisp-core/../../examples/render_gallery.rs

/root/repo/target/debug/examples/render_gallery-479c7dcf6bcd0c30: crates/crisp-core/../../examples/render_gallery.rs

crates/crisp-core/../../examples/render_gallery.rs:
