/root/repo/target/debug/examples/trace_workflow-4d5238c591f22f60.d: crates/crisp-core/../../examples/trace_workflow.rs

/root/repo/target/debug/examples/trace_workflow-4d5238c591f22f60: crates/crisp-core/../../examples/trace_workflow.rs

crates/crisp-core/../../examples/trace_workflow.rs:
