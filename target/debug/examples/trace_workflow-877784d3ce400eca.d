/root/repo/target/debug/examples/trace_workflow-877784d3ce400eca.d: crates/crisp-core/../../examples/trace_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_workflow-877784d3ce400eca.rmeta: crates/crisp-core/../../examples/trace_workflow.rs Cargo.toml

crates/crisp-core/../../examples/trace_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
