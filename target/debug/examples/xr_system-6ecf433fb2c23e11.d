/root/repo/target/debug/examples/xr_system-6ecf433fb2c23e11.d: crates/crisp-core/../../examples/xr_system.rs

/root/repo/target/debug/examples/xr_system-6ecf433fb2c23e11: crates/crisp-core/../../examples/xr_system.rs

crates/crisp-core/../../examples/xr_system.rs:
