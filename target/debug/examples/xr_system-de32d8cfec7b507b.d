/root/repo/target/debug/examples/xr_system-de32d8cfec7b507b.d: crates/crisp-core/../../examples/xr_system.rs Cargo.toml

/root/repo/target/debug/examples/libxr_system-de32d8cfec7b507b.rmeta: crates/crisp-core/../../examples/xr_system.rs Cargo.toml

crates/crisp-core/../../examples/xr_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
