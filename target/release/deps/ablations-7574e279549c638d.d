/root/repo/target/release/deps/ablations-7574e279549c638d.d: crates/crisp-bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-7574e279549c638d: crates/crisp-bench/src/bin/ablations.rs

crates/crisp-bench/src/bin/ablations.rs:
