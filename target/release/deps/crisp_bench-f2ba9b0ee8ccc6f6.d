/root/repo/target/release/deps/crisp_bench-f2ba9b0ee8ccc6f6.d: crates/crisp-bench/src/lib.rs

/root/repo/target/release/deps/libcrisp_bench-f2ba9b0ee8ccc6f6.rlib: crates/crisp-bench/src/lib.rs

/root/repo/target/release/deps/libcrisp_bench-f2ba9b0ee8ccc6f6.rmeta: crates/crisp-bench/src/lib.rs

crates/crisp-bench/src/lib.rs:
