/root/repo/target/release/deps/crisp_core-d6f85a9c9a00c817.d: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

/root/repo/target/release/deps/libcrisp_core-d6f85a9c9a00c817.rlib: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

/root/repo/target/release/deps/libcrisp_core-d6f85a9c9a00c817.rmeta: crates/crisp-core/src/lib.rs crates/crisp-core/src/experiments/mod.rs crates/crisp-core/src/experiments/ablations.rs crates/crisp-core/src/experiments/composition.rs crates/crisp-core/src/experiments/concurrent.rs crates/crisp-core/src/experiments/renders.rs crates/crisp-core/src/experiments/table02.rs crates/crisp-core/src/experiments/validation.rs crates/crisp-core/src/framerate.rs crates/crisp-core/src/qos.rs crates/crisp-core/src/report.rs

crates/crisp-core/src/lib.rs:
crates/crisp-core/src/experiments/mod.rs:
crates/crisp-core/src/experiments/ablations.rs:
crates/crisp-core/src/experiments/composition.rs:
crates/crisp-core/src/experiments/concurrent.rs:
crates/crisp-core/src/experiments/renders.rs:
crates/crisp-core/src/experiments/table02.rs:
crates/crisp-core/src/experiments/validation.rs:
crates/crisp-core/src/framerate.rs:
crates/crisp-core/src/qos.rs:
crates/crisp-core/src/report.rs:
