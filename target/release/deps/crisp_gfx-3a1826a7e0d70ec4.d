/root/repo/target/release/deps/crisp_gfx-3a1826a7e0d70ec4.d: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs

/root/repo/target/release/deps/libcrisp_gfx-3a1826a7e0d70ec4.rlib: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs

/root/repo/target/release/deps/libcrisp_gfx-3a1826a7e0d70ec4.rmeta: crates/crisp-gfx/src/lib.rs crates/crisp-gfx/src/api.rs crates/crisp-gfx/src/batch.rs crates/crisp-gfx/src/compute.rs crates/crisp-gfx/src/fb.rs crates/crisp-gfx/src/math.rs crates/crisp-gfx/src/mesh.rs crates/crisp-gfx/src/pipeline.rs crates/crisp-gfx/src/raster.rs crates/crisp-gfx/src/shader.rs crates/crisp-gfx/src/texture.rs

crates/crisp-gfx/src/lib.rs:
crates/crisp-gfx/src/api.rs:
crates/crisp-gfx/src/batch.rs:
crates/crisp-gfx/src/compute.rs:
crates/crisp-gfx/src/fb.rs:
crates/crisp-gfx/src/math.rs:
crates/crisp-gfx/src/mesh.rs:
crates/crisp-gfx/src/pipeline.rs:
crates/crisp-gfx/src/raster.rs:
crates/crisp-gfx/src/shader.rs:
crates/crisp-gfx/src/texture.rs:
