/root/repo/target/release/deps/crisp_mem-727ae6b257f0611d.d: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs

/root/repo/target/release/deps/libcrisp_mem-727ae6b257f0611d.rlib: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs

/root/repo/target/release/deps/libcrisp_mem-727ae6b257f0611d.rmeta: crates/crisp-mem/src/lib.rs crates/crisp-mem/src/cache.rs crates/crisp-mem/src/dram.rs crates/crisp-mem/src/l2.rs crates/crisp-mem/src/mshr.rs crates/crisp-mem/src/partition.rs crates/crisp-mem/src/port.rs crates/crisp-mem/src/req.rs crates/crisp-mem/src/stats.rs crates/crisp-mem/src/system.rs crates/crisp-mem/src/xbar.rs

crates/crisp-mem/src/lib.rs:
crates/crisp-mem/src/cache.rs:
crates/crisp-mem/src/dram.rs:
crates/crisp-mem/src/l2.rs:
crates/crisp-mem/src/mshr.rs:
crates/crisp-mem/src/partition.rs:
crates/crisp-mem/src/port.rs:
crates/crisp-mem/src/req.rs:
crates/crisp-mem/src/stats.rs:
crates/crisp-mem/src/system.rs:
crates/crisp-mem/src/xbar.rs:
