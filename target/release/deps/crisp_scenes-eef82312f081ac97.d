/root/repo/target/release/deps/crisp_scenes-eef82312f081ac97.d: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

/root/repo/target/release/deps/libcrisp_scenes-eef82312f081ac97.rlib: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

/root/repo/target/release/deps/libcrisp_scenes-eef82312f081ac97.rmeta: crates/crisp-scenes/src/lib.rs crates/crisp-scenes/src/compute.rs crates/crisp-scenes/src/primitives.rs crates/crisp-scenes/src/scenes.rs crates/crisp-scenes/src/silicon.rs

crates/crisp-scenes/src/lib.rs:
crates/crisp-scenes/src/compute.rs:
crates/crisp-scenes/src/primitives.rs:
crates/crisp-scenes/src/scenes.rs:
crates/crisp-scenes/src/silicon.rs:
