/root/repo/target/release/deps/crisp_sim-1b03b18dc0ea675e.d: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

/root/repo/target/release/deps/libcrisp_sim-1b03b18dc0ea675e.rlib: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

/root/repo/target/release/deps/libcrisp_sim-1b03b18dc0ea675e.rmeta: crates/crisp-sim/src/lib.rs crates/crisp-sim/src/config.rs crates/crisp-sim/src/gpu.rs crates/crisp-sim/src/policy.rs crates/crisp-sim/src/sim.rs crates/crisp-sim/src/slicer.rs crates/crisp-sim/src/stats.rs

crates/crisp-sim/src/lib.rs:
crates/crisp-sim/src/config.rs:
crates/crisp-sim/src/gpu.rs:
crates/crisp-sim/src/policy.rs:
crates/crisp-sim/src/sim.rs:
crates/crisp-sim/src/slicer.rs:
crates/crisp-sim/src/stats.rs:
