/root/repo/target/release/deps/crisp_sm-a375835fbd3da5a0.d: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

/root/repo/target/release/deps/libcrisp_sm-a375835fbd3da5a0.rlib: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

/root/repo/target/release/deps/libcrisp_sm-a375835fbd3da5a0.rmeta: crates/crisp-sm/src/lib.rs crates/crisp-sm/src/config.rs crates/crisp-sm/src/cta.rs crates/crisp-sm/src/lsu.rs crates/crisp-sm/src/sm.rs crates/crisp-sm/src/units.rs crates/crisp-sm/src/warp.rs

crates/crisp-sm/src/lib.rs:
crates/crisp-sm/src/config.rs:
crates/crisp-sm/src/cta.rs:
crates/crisp-sm/src/lsu.rs:
crates/crisp-sm/src/sm.rs:
crates/crisp-sm/src/units.rs:
crates/crisp-sm/src/warp.rs:
