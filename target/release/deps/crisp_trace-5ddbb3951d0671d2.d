/root/repo/target/release/deps/crisp_trace-5ddbb3951d0671d2.d: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

/root/repo/target/release/deps/libcrisp_trace-5ddbb3951d0671d2.rlib: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

/root/repo/target/release/deps/libcrisp_trace-5ddbb3951d0671d2.rmeta: crates/crisp-trace/src/lib.rs crates/crisp-trace/src/analysis.rs crates/crisp-trace/src/codec.rs crates/crisp-trace/src/isa.rs crates/crisp-trace/src/kernel.rs crates/crisp-trace/src/stream.rs

crates/crisp-trace/src/lib.rs:
crates/crisp-trace/src/analysis.rs:
crates/crisp-trace/src/codec.rs:
crates/crisp-trace/src/isa.rs:
crates/crisp-trace/src/kernel.rs:
crates/crisp-trace/src/stream.rs:
