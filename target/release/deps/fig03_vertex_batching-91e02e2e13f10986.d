/root/repo/target/release/deps/fig03_vertex_batching-91e02e2e13f10986.d: crates/crisp-bench/src/bin/fig03_vertex_batching.rs

/root/repo/target/release/deps/fig03_vertex_batching-91e02e2e13f10986: crates/crisp-bench/src/bin/fig03_vertex_batching.rs

crates/crisp-bench/src/bin/fig03_vertex_batching.rs:
