/root/repo/target/release/deps/fig05_render_planets-c4edc66371e7a6ce.d: crates/crisp-bench/src/bin/fig05_render_planets.rs

/root/repo/target/release/deps/fig05_render_planets-c4edc66371e7a6ce: crates/crisp-bench/src/bin/fig05_render_planets.rs

crates/crisp-bench/src/bin/fig05_render_planets.rs:
