/root/repo/target/release/deps/fig06_frame_correlation-b4bec7080f4f6d93.d: crates/crisp-bench/src/bin/fig06_frame_correlation.rs

/root/repo/target/release/deps/fig06_frame_correlation-b4bec7080f4f6d93: crates/crisp-bench/src/bin/fig06_frame_correlation.rs

crates/crisp-bench/src/bin/fig06_frame_correlation.rs:
