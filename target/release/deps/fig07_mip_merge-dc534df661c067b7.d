/root/repo/target/release/deps/fig07_mip_merge-dc534df661c067b7.d: crates/crisp-bench/src/bin/fig07_mip_merge.rs

/root/repo/target/release/deps/fig07_mip_merge-dc534df661c067b7: crates/crisp-bench/src/bin/fig07_mip_merge.rs

crates/crisp-bench/src/bin/fig07_mip_merge.rs:
