/root/repo/target/release/deps/fig08_sponza_lod-d72c95158726f1b2.d: crates/crisp-bench/src/bin/fig08_sponza_lod.rs

/root/repo/target/release/deps/fig08_sponza_lod-d72c95158726f1b2: crates/crisp-bench/src/bin/fig08_sponza_lod.rs

crates/crisp-bench/src/bin/fig08_sponza_lod.rs:
