/root/repo/target/release/deps/fig09_lod_mape-01ec0bf80a144ae4.d: crates/crisp-bench/src/bin/fig09_lod_mape.rs

/root/repo/target/release/deps/fig09_lod_mape-01ec0bf80a144ae4: crates/crisp-bench/src/bin/fig09_lod_mape.rs

crates/crisp-bench/src/bin/fig09_lod_mape.rs:
