/root/repo/target/release/deps/fig10_texlines_histogram-5b03a2fbaedbc63b.d: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs

/root/repo/target/release/deps/fig10_texlines_histogram-5b03a2fbaedbc63b: crates/crisp-bench/src/bin/fig10_texlines_histogram.rs

crates/crisp-bench/src/bin/fig10_texlines_histogram.rs:
