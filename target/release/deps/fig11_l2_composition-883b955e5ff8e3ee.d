/root/repo/target/release/deps/fig11_l2_composition-883b955e5ff8e3ee.d: crates/crisp-bench/src/bin/fig11_l2_composition.rs

/root/repo/target/release/deps/fig11_l2_composition-883b955e5ff8e3ee: crates/crisp-bench/src/bin/fig11_l2_composition.rs

crates/crisp-bench/src/bin/fig11_l2_composition.rs:
