/root/repo/target/release/deps/fig12_warped_slicer-abf70fc4e4751002.d: crates/crisp-bench/src/bin/fig12_warped_slicer.rs

/root/repo/target/release/deps/fig12_warped_slicer-abf70fc4e4751002: crates/crisp-bench/src/bin/fig12_warped_slicer.rs

crates/crisp-bench/src/bin/fig12_warped_slicer.rs:
