/root/repo/target/release/deps/fig13_occupancy_timeline-65e00bdc448fc2de.d: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs

/root/repo/target/release/deps/fig13_occupancy_timeline-65e00bdc448fc2de: crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs

crates/crisp-bench/src/bin/fig13_occupancy_timeline.rs:
