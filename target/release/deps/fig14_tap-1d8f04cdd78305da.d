/root/repo/target/release/deps/fig14_tap-1d8f04cdd78305da.d: crates/crisp-bench/src/bin/fig14_tap.rs

/root/repo/target/release/deps/fig14_tap-1d8f04cdd78305da: crates/crisp-bench/src/bin/fig14_tap.rs

crates/crisp-bench/src/bin/fig14_tap.rs:
