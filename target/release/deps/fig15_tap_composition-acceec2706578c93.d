/root/repo/target/release/deps/fig15_tap_composition-acceec2706578c93.d: crates/crisp-bench/src/bin/fig15_tap_composition.rs

/root/repo/target/release/deps/fig15_tap_composition-acceec2706578c93: crates/crisp-bench/src/bin/fig15_tap_composition.rs

crates/crisp-bench/src/bin/fig15_tap_composition.rs:
