/root/repo/target/release/deps/run_all-553c3c46f700714d.d: crates/crisp-bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-553c3c46f700714d: crates/crisp-bench/src/bin/run_all.rs

crates/crisp-bench/src/bin/run_all.rs:
