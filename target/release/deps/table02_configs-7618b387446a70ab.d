/root/repo/target/release/deps/table02_configs-7618b387446a70ab.d: crates/crisp-bench/src/bin/table02_configs.rs

/root/repo/target/release/deps/table02_configs-7618b387446a70ab: crates/crisp-bench/src/bin/table02_configs.rs

crates/crisp-bench/src/bin/table02_configs.rs:
