/root/repo/target/release/deps/thread_scaling-179dc90c1bcaf062.d: crates/crisp-bench/src/bin/thread_scaling.rs

/root/repo/target/release/deps/thread_scaling-179dc90c1bcaf062: crates/crisp-bench/src/bin/thread_scaling.rs

crates/crisp-bench/src/bin/thread_scaling.rs:
