/root/repo/target/release/deps/trace_stats-b695bff44880d34e.d: crates/crisp-bench/src/bin/trace_stats.rs

/root/repo/target/release/deps/trace_stats-b695bff44880d34e: crates/crisp-bench/src/bin/trace_stats.rs

crates/crisp-bench/src/bin/trace_stats.rs:
