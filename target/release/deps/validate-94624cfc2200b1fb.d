/root/repo/target/release/deps/validate-94624cfc2200b1fb.d: crates/crisp-bench/src/bin/validate.rs

/root/repo/target/release/deps/validate-94624cfc2200b1fb: crates/crisp-bench/src/bin/validate.rs

crates/crisp-bench/src/bin/validate.rs:
