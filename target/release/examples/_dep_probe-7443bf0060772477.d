/root/repo/target/release/examples/_dep_probe-7443bf0060772477.d: crates/crisp-core/../../examples/_dep_probe.rs

/root/repo/target/release/examples/_dep_probe-7443bf0060772477: crates/crisp-core/../../examples/_dep_probe.rs

crates/crisp-core/../../examples/_dep_probe.rs:
