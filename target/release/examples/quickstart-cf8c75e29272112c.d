/root/repo/target/release/examples/quickstart-cf8c75e29272112c.d: crates/crisp-core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-cf8c75e29272112c: crates/crisp-core/../../examples/quickstart.rs

crates/crisp-core/../../examples/quickstart.rs:
