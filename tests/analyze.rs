//! Adversarial fixtures for the static analyzer: each seeds one specific
//! defect into an otherwise *structurally valid* trace and asserts the
//! exact lint code and site crisp-analyze pins it to. The point of the
//! layer is that these traces sail through `validate_kernel` — every
//! fixture proves that first — and only the semantic pass catches them.

use crisp_analyze::{analyze_bundle, analyze_kernel, AnalysisConfig, LintCode, Severity};
use crisp_bench::{corpus_lint_config, frontend_corpus};
use crisp_trace::{
    validate_kernel, CtaTrace, DataClass, Instr, KernelTrace, MemAccess, Op, Reg, Space, WarpTrace,
    WARP_SIZE,
};

fn kernel_of(warps: Vec<WarpTrace>) -> KernelTrace {
    let n = warps.len() as u32;
    KernelTrace::new(
        "fixture",
        n * WARP_SIZE as u32,
        16,
        4096,
        vec![CtaTrace::new(warps)],
    )
}

fn shared(base: u64) -> MemAccess {
    MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, base, WARP_SIZE)
}

fn global(base: u64) -> MemAccess {
    MemAccess::coalesced(Space::Global, DataClass::Compute, 4, base, WARP_SIZE)
}

/// Analyze with the default config; assert the fixture is structurally
/// clean so the finding can only have come from the semantic layer.
fn lint(k: &KernelTrace) -> Vec<crisp_analyze::Diagnostic> {
    validate_kernel(k).expect("fixture must pass structural validation");
    analyze_kernel(k, &AnalysisConfig::new()).diagnostics
}

#[test]
fn seeded_write_write_race_is_pinned_to_both_stores() {
    // Two warps write the same shared bytes in barrier interval 0.
    let warp = || {
        let mut w = WarpTrace::new();
        w.push(Instr::load(Reg(1), global(0x1000)));
        w.push(Instr::store(Reg(1), shared(0)));
        w.seal();
        w
    };
    let k = kernel_of(vec![warp(), warp()]);
    let diags = lint(&k);
    let races: Vec<_> = diags
        .iter()
        .filter(|d| d.code == LintCode::SharedWriteWrite)
        .collect();
    assert_eq!(races.len(), 1, "exactly one WW pair: {diags:?}");
    let d = races[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.site.warp, d.site.instr), (Some(0), Some(1)));
    let rel = d.related.as_ref().expect("race has a second site");
    assert_eq!((rel.warp, rel.instr), (Some(1), Some(1)));
}

#[test]
fn missing_barrier_read_write_race_names_producer_and_consumer() {
    // Producer stores, consumer loads, and the only barrier comes *after*
    // both — so they share interval 0 and nothing orders them.
    let mut producer = WarpTrace::new();
    producer.push(Instr::load(Reg(1), global(0x1000)));
    producer.push(Instr::store(Reg(1), shared(0)));
    producer.push(Instr::bar());
    producer.seal();
    let mut consumer = WarpTrace::new();
    consumer.push(Instr::load(Reg(2), shared(0)));
    consumer.push(Instr::bar());
    consumer.seal();

    let k = kernel_of(vec![producer, consumer]);
    let diags = lint(&k);
    let races: Vec<_> = diags
        .iter()
        .filter(|d| d.code == LintCode::SharedReadWrite)
        .collect();
    assert_eq!(races.len(), 1, "exactly one RW pair: {diags:?}");
    let d = races[0];
    assert_eq!(d.severity, Severity::Error);
    // Anchored at the (warp, instr)-lower access: the producer's store.
    assert_eq!((d.site.warp, d.site.instr), (Some(0), Some(1)));
    let rel = d.related.as_ref().expect("race has a second site");
    assert_eq!((rel.warp, rel.instr), (Some(1), Some(0)));
}

#[test]
fn barrier_between_producer_and_consumer_silences_the_race() {
    // The fixed version of the case above: store / bar / load. The store
    // lands in interval 0, the load in interval 1 — ordered, no finding.
    let mut producer = WarpTrace::new();
    producer.push(Instr::load(Reg(1), global(0x1000)));
    producer.push(Instr::store(Reg(1), shared(0)));
    producer.push(Instr::bar());
    producer.seal();
    let mut consumer = WarpTrace::new();
    consumer.push(Instr::bar());
    consumer.push(Instr::load(Reg(2), shared(0)));
    consumer.seal();

    let k = kernel_of(vec![producer, consumer]);
    let diags = lint(&k);
    assert!(
        !diags.iter().any(|d| matches!(
            d.code,
            LintCode::SharedReadWrite | LintCode::SharedWriteWrite
        )),
        "barrier-ordered accesses must not race: {diags:?}"
    );
}

#[test]
fn use_before_def_is_pinned_to_the_reading_instruction() {
    let mut w = WarpTrace::new();
    w.push(Instr::load(Reg(1), global(0x1000)));
    w.push(Instr::alu(Op::FpFma, Reg(3), &[Reg(1), Reg(9)]));
    w.push(Instr::store(Reg(3), global(0x2000)));
    w.seal();

    let k = kernel_of(vec![w]);
    let diags = lint(&k);
    let ubd: Vec<_> = diags
        .iter()
        .filter(|d| d.code == LintCode::UseBeforeDef)
        .collect();
    assert_eq!(ubd.len(), 1, "exactly one undefined read: {diags:?}");
    let d = ubd[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.site.warp, d.site.instr), (Some(0), Some(1)));
    assert!(
        d.message.contains("r9"),
        "names the register: {}",
        d.message
    );
}

#[test]
fn dead_write_chain_flags_every_overwritten_def() {
    // r2 is written three times; only the last value is ever read.
    let mut w = WarpTrace::new();
    w.push(Instr::load(Reg(1), global(0x1000)));
    w.push(Instr::alu(Op::IntAlu, Reg(2), &[Reg(1)]));
    w.push(Instr::alu(Op::IntAlu, Reg(2), &[Reg(1)]));
    w.push(Instr::alu(Op::IntAlu, Reg(2), &[Reg(1)]));
    w.push(Instr::store(Reg(2), global(0x2000)));
    w.seal();

    let k = kernel_of(vec![w]);
    let diags = lint(&k);
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.code == LintCode::DeadWrite)
        .collect();
    let sites: Vec<_> = dead
        .iter()
        .map(|d| (d.site.instr, d.related.as_ref().and_then(|r| r.instr)))
        .collect();
    assert_eq!(
        sites,
        vec![(Some(1), Some(2)), (Some(2), Some(3))],
        "both dead defs, each anchored at the write and related to its \
         overwriter: {diags:?}"
    );
    assert!(dead.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn redundant_load_points_back_at_the_first_copy() {
    let mut w = WarpTrace::new();
    w.push(Instr::load(Reg(1), global(0x1000)));
    w.push(Instr::load(Reg(2), global(0x1000)));
    w.push(Instr::alu(Op::IntAlu, Reg(3), &[Reg(1), Reg(2)]));
    w.push(Instr::store(Reg(3), global(0x2000)));
    w.seal();

    let k = kernel_of(vec![w]);
    let diags = lint(&k);
    let red: Vec<_> = diags
        .iter()
        .filter(|d| d.code == LintCode::RedundantLoad)
        .collect();
    assert_eq!(red.len(), 1, "{diags:?}");
    assert_eq!(red[0].site.instr, Some(1));
    assert_eq!(red[0].related.as_ref().and_then(|r| r.instr), Some(0));
}

#[test]
fn cross_cta_write_overlap_warns_and_allow_entry_silences_it() {
    let warp = || {
        let mut w = WarpTrace::new();
        w.push(Instr::load(Reg(1), global(0x1000)));
        w.push(Instr::store(Reg(1), global(0x9000)));
        w.seal();
        w
    };
    let k = KernelTrace::new(
        "reduce_like",
        WARP_SIZE as u32,
        16,
        0,
        vec![CtaTrace::new(vec![warp()]), CtaTrace::new(vec![warp()])],
    );
    validate_kernel(&k).expect("structurally clean");

    let bare = analyze_kernel(&k, &AnalysisConfig::new());
    let overlaps: Vec<_> = bare
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::GlobalWriteOverlap)
        .collect();
    assert_eq!(overlaps.len(), 1, "{:?}", bare.diagnostics);
    assert_eq!(overlaps[0].severity, Severity::Warning);

    let allowed = analyze_kernel(
        &k,
        &AnalysisConfig::new().allow_in(LintCode::GlobalWriteOverlap, "reduce_like"),
    );
    assert!(
        !allowed
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::GlobalWriteOverlap),
        "scoped allow entry must silence the overlap"
    );
}

#[test]
fn frontend_corpus_is_error_free_under_the_audited_config() {
    let cfg = corpus_lint_config();
    for (name, bundle) in frontend_corpus() {
        let report = analyze_bundle(&bundle, &cfg);
        assert!(
            !report.has_errors(),
            "{name}: {} analyzer errors, first: {:?}",
            report.error_count(),
            report.errors().next()
        );
    }
}

#[test]
fn corpus_allow_entry_is_load_bearing() {
    // `corpus_lint_config` carries an allow entry for the vio_reduce
    // accumulator overlap; prove the finding exists without it so the
    // entry never outlives the pattern it documents.
    let bundles = frontend_corpus();
    let (_, b) = bundles
        .iter()
        .find(|(n, _)| n == "vio-paper")
        .expect("paper-scale vio bundle in corpus");
    let bare = analyze_bundle(b, &AnalysisConfig::new());
    assert!(
        bare.diagnostics
            .iter()
            .any(|d| d.code == LintCode::GlobalWriteOverlap),
        "vio-paper no longer produces the overlap the allow entry documents"
    );
    let audited = analyze_bundle(b, &corpus_lint_config());
    assert!(
        !audited
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::GlobalWriteOverlap),
        "allow entry failed to suppress the audited overlap"
    );
}

#[test]
fn reports_are_byte_identical_across_analysis_thread_counts() {
    let cfg = corpus_lint_config();
    for (name, bundle) in frontend_corpus() {
        let base = analyze_bundle(&bundle, &cfg.clone().threads(1));
        for threads in [2, 4] {
            let multi = analyze_bundle(&bundle, &cfg.clone().threads(threads));
            assert_eq!(
                base.text(),
                multi.text(),
                "{name}: text report differs at {threads} threads"
            );
            assert_eq!(
                base.to_json(),
                multi.to_json(),
                "{name}: JSON report differs at {threads} threads"
            );
        }
    }
}
