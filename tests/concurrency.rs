//! Integration tests for concurrent graphics+compute execution and the
//! partitioning machinery.

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, simulate, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_scenes::timewarp;
use crisp_trace::TraceBundle;

fn frame() -> Stream {
    Scene::build(SceneId::SponzaPbr, 0.2)
        .render(96, 54, false, GRAPHICS_STREAM)
        .trace
}

fn makespan(r: &SimResult) -> u64 {
    r.per_stream
        .values()
        .map(|s| s.stats.finish_cycle)
        .max()
        .unwrap()
}

#[test]
fn async_compute_beats_serial_execution() {
    let gpu = GpuConfig::jetson_orin();
    // Serial: graphics then compute in one stream.
    let mut serial = frame();
    serial
        .commands
        .extend(holo(GRAPHICS_STREAM, ComputeScale::tiny()).commands);
    let serial_cycles = simulate(
        gpu.clone(),
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![serial]),
    )
    .cycles;

    let conc = simulate(
        gpu.clone(),
        PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        concurrent_bundle(frame(), holo(COMPUTE_STREAM, ComputeScale::tiny())),
    );
    assert!(
        makespan(&conc) < serial_cycles,
        "concurrent must beat serial: {} vs {serial_cycles}",
        makespan(&conc)
    );
}

#[test]
fn both_streams_make_progress_under_every_policy() {
    let gpu = GpuConfig::jetson_orin();
    let specs = vec![
        PartitionSpec::greedy(),
        PartitionSpec::mps_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        PartitionSpec::mig_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        PartitionSpec::fg_dynamic(SlicerConfig {
            sample_cycles: 2_000,
            ..SlicerConfig::default()
        }),
        PartitionSpec::tap_even(
            &gpu,
            GRAPHICS_STREAM,
            COMPUTE_STREAM,
            TapConfig {
                epoch_accesses: 5_000,
                sample_every: 2,
                min_sets: 1,
            },
        ),
    ];
    for spec in specs {
        let r = simulate(
            gpu.clone(),
            spec,
            concurrent_bundle(frame(), vio(COMPUTE_STREAM, ComputeScale::tiny())),
        );
        assert!(r.per_stream[&GRAPHICS_STREAM].stats.instructions > 0);
        assert!(r.per_stream[&COMPUTE_STREAM].stats.instructions > 0);
        assert!(r.per_stream[&GRAPHICS_STREAM].stats.finish_cycle > 0);
        assert!(r.per_stream[&COMPUTE_STREAM].stats.finish_cycle > 0);
    }
}

#[test]
fn per_stream_stats_separate_the_workloads() {
    // The paper extends Accel-Sim with per-stream stats because aggregates
    // are "misleading when concurrent execution is enabled".
    let gpu = GpuConfig::jetson_orin();
    let r = simulate(
        gpu.clone(),
        PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        concurrent_bundle(frame(), holo(COMPUTE_STREAM, ComputeScale::tiny())),
    );
    // Graphics traffic must be attributed to stream 0, compute to stream 1.
    let g_l1 = r.l1_stats.stream_total(GRAPHICS_STREAM);
    let c_l1 = r.l1_stats.stream_total(COMPUTE_STREAM);
    assert!(g_l1.accesses > 0);
    assert!(c_l1.accesses > 0);
    let g_tex = r.l1_stats.get(GRAPHICS_STREAM, DataClass::Texture);
    let c_tex = r.l1_stats.get(COMPUTE_STREAM, DataClass::Texture);
    assert!(g_tex.accesses > 0, "graphics does texture work");
    assert_eq!(c_tex.accesses, 0, "compute never touches textures");
}

#[test]
fn mig_keeps_dram_partitions_disjoint() {
    let gpu = GpuConfig::jetson_orin();
    let r = simulate(
        gpu.clone(),
        PartitionSpec::mig_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        concurrent_bundle(frame(), nn(COMPUTE_STREAM, ComputeScale::tiny())),
    );
    // Both sides still get DRAM service through their own partitions.
    assert!(r.per_stream[&GRAPHICS_STREAM].dram_bytes > 0);
    assert!(r.per_stream[&COMPUTE_STREAM].dram_bytes > 0);
}

#[test]
fn compute_bound_holo_barely_uses_dram() {
    let gpu = GpuConfig::jetson_orin();
    let r = simulate(
        gpu.clone(),
        PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        concurrent_bundle(frame(), holo(COMPUTE_STREAM, ComputeScale::tiny())),
    );
    let g = r.per_stream[&GRAPHICS_STREAM].dram_bytes;
    let c = r.per_stream[&COMPUTE_STREAM].dram_bytes;
    assert!(
        (c as f64) < g as f64,
        "HOLO is compute-bound; rendering must dominate DRAM: gfx {g}, holo {c}"
    );
}

#[test]
fn tap_gives_the_compute_bound_stream_few_sets() {
    // Figure 14/15: "This causes TAP to always favor rendering workloads
    // and assign only 1 set to HOLO kernels."
    let gpu = GpuConfig::jetson_orin();
    let r = simulate(
        gpu.clone(),
        PartitionSpec::tap_even(
            &gpu,
            GRAPHICS_STREAM,
            COMPUTE_STREAM,
            TapConfig {
                epoch_accesses: 5_000,
                sample_every: 1,
                min_sets: 1,
            },
        ),
        concurrent_bundle(frame(), holo(COMPUTE_STREAM, ComputeScale::tiny())),
    );
    let alloc = r.tap_allocation.expect("TAP ran");
    let gfx_sets = alloc.iter().find(|(s, _)| *s == GRAPHICS_STREAM).unwrap().1;
    let holo_sets = alloc.iter().find(|(s, _)| *s == COMPUTE_STREAM).unwrap().1;
    assert!(
        gfx_sets > holo_sets,
        "TAP must favour rendering: gfx {gfx_sets} vs holo {holo_sets}"
    );
}

#[test]
fn dynamic_partition_resets_at_drawcalls_and_kernel_launches() {
    let gpu = GpuConfig::jetson_orin();
    let slicer = SlicerConfig {
        sample_cycles: 500,
        ratios: vec![(2, 8), (4, 8), (6, 8)],
    };
    let r = simulate(
        gpu.clone(),
        PartitionSpec::fg_dynamic(slicer),
        concurrent_bundle(frame(), vio(COMPUTE_STREAM, ComputeScale::tiny())),
    );
    // VIO launches a dozen kernels; the slicer must have decided multiple
    // times (each launch restarts sampling).
    assert!(
        r.slicer_history.len() >= 3,
        "expected several slicer decisions, got {}",
        r.slicer_history.len()
    );
}

#[test]
fn occupancy_timeline_tracks_both_streams() {
    let gpu = GpuConfig::jetson_orin();
    let r = Simulation::builder()
        .gpu(gpu.clone())
        .partition(PartitionSpec::fg_even(
            &gpu,
            GRAPHICS_STREAM,
            COMPUTE_STREAM,
        ))
        .occupancy_interval(200)
        .trace(concurrent_bundle(
            frame(),
            nn(COMPUTE_STREAM, ComputeScale::tiny()),
        ))
        .run_or_panic();
    let saw_gfx = r
        .occupancy
        .iter()
        .any(|s| s.by_stream.get(&GRAPHICS_STREAM).copied().unwrap_or(0.0) > 0.0);
    let saw_nn = r
        .occupancy
        .iter()
        .any(|s| s.by_stream.get(&COMPUTE_STREAM).copied().unwrap_or(0.0) > 0.0);
    assert!(
        saw_gfx && saw_nn,
        "both streams must appear in the timeline"
    );
}

#[test]
fn three_streams_share_one_sm_pool() {
    // Paper Section IV: "the simulation framework can be easily extended
    // to support more than 2 workloads" — exercise a 3-way intra-SM split.
    let gpu = GpuConfig::jetson_orin();
    const ATW: StreamId = StreamId(2);
    let (w, h) = (96u32, 54u32);
    let f = Scene::build(SceneId::SponzaKhronos, 0.2).render(w, h, false, GRAPHICS_STREAM);
    let spec = PartitionSpec::fg_fractions(
        &gpu,
        [
            (GRAPHICS_STREAM, (4, 8)),
            (COMPUTE_STREAM, (2, 8)),
            (ATW, (2, 8)),
        ],
    );
    let bundle = TraceBundle::from_streams(vec![
        f.trace,
        vio(COMPUTE_STREAM, ComputeScale::tiny()),
        timewarp(ATW, w, h, ComputeScale::tiny()),
    ]);
    let r = simulate(gpu, spec, bundle);
    for id in [GRAPHICS_STREAM, COMPUTE_STREAM, ATW] {
        let s = &r.per_stream[&id].stats;
        assert!(s.instructions > 0, "{id} starved");
        assert!(s.finish_cycle > 0, "{id} never finished");
    }
}

#[test]
fn timewarp_consumes_the_framebuffer_through_the_l2() {
    // Producer→consumer: the graphics stream writes the framebuffer; the
    // timewarp gathers read it. With the render first in a single serial
    // stream, the reprojection's loads must find the framebuffer lines in
    // the L2 (no DRAM reads for data that was just produced).
    let gpu = GpuConfig::jetson_orin();
    let (w, h) = (96u32, 54u32);
    let f = Scene::build(SceneId::SponzaKhronos, 0.2).render(w, h, false, GRAPHICS_STREAM);
    let mut serial = f.trace;
    serial
        .commands
        .extend(timewarp(GRAPHICS_STREAM, w, h, ComputeScale::tiny()).commands);
    let r = simulate(
        gpu.clone(),
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![serial]),
    );
    let warmed = r.l2_stats.class_total(DataClass::Compute);
    assert!(warmed.accesses > 0, "timewarp must reach the L2");

    // Baseline: timewarp alone — its framebuffer reads are cold misses
    // (its own output stores miss either way).
    let alone = simulate(
        gpu,
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![timewarp(GRAPHICS_STREAM, w, h, ComputeScale::tiny())]),
    );
    let cold = alone.l2_stats.class_total(DataClass::Compute);
    assert!(
        warmed.hit_rate() > cold.hit_rate() + 0.2,
        "rendering first must warm the reprojection's reads: {} vs {}",
        warmed.hit_rate(),
        cold.hit_rate()
    );
}

#[test]
fn kernel_log_interleaves_across_streams() {
    let gpu = GpuConfig::jetson_orin();
    let f = Scene::build(SceneId::SponzaKhronos, 0.2).render(96, 54, false, GRAPHICS_STREAM);
    let r = simulate(
        gpu.clone(),
        PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
        concurrent_bundle(f.trace, vio(COMPUTE_STREAM, ComputeScale::tiny())),
    );
    let gfx_kernels = r
        .kernel_log
        .iter()
        .filter(|k| k.stream == GRAPHICS_STREAM)
        .count();
    let vio_kernels = r
        .kernel_log
        .iter()
        .filter(|k| k.stream == COMPUTE_STREAM)
        .count();
    assert!(gfx_kernels >= 2);
    assert!(
        vio_kernels >= 12,
        "VIO is many small kernels: {vio_kernels}"
    );
    // At least one pair of kernels from different streams overlaps in time.
    let overlap = r.kernel_log.iter().any(|a| {
        r.kernel_log.iter().any(|b| {
            a.stream != b.stream && a.start_cycle < b.end_cycle && b.start_cycle < a.end_cycle
        })
    });
    assert!(overlap, "streams must actually execute concurrently");
}

#[test]
fn stats_clear_marker_constants_agree() {
    // `crisp-scenes` duplicates the marker label to avoid depending on
    // `crisp-sim`; this is the test that keeps the two in sync.
    let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
    let f = scene.render_warmed(64, 36, false, GRAPHICS_STREAM);
    let has_marker = f.trace.commands.iter().any(|c| match c {
        crisp_trace::Command::Marker(l) => l == crisp_sim::CLEAR_STATS_MARKER,
        _ => false,
    });
    assert!(
        has_marker,
        "render_warmed must emit crisp-sim's clear-stats marker"
    );
}

#[test]
fn warmed_frames_reach_steady_state_hit_rates() {
    // The second (post-marker) frame re-touches the first frame's working
    // set: with everything fitting the L2, steady-state hit rates are far
    // above the cold frame's.
    let gpu = GpuConfig::jetson_orin();
    let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
    let cold = simulate(
        gpu.clone(),
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![scene.render(96, 54, false, GRAPHICS_STREAM).trace]),
    );
    let warm = simulate(
        gpu,
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![
            scene.render_warmed(96, 54, false, GRAPHICS_STREAM).trace,
        ]),
    );
    let cold_hit = cold.l2_stats.total().hit_rate();
    let warm_hit = warm.l2_stats.total().hit_rate();
    assert!(
        warm_hit > cold_hit + 0.3,
        "steady state must be much warmer: cold {cold_hit:.2}, warm {warm_hit:.2}"
    );
}
