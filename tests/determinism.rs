//! Thread-count determinism: the sharded parallel cycle loop must be
//! bit-identical to the serial one.
//!
//! The parallel executor's contract (see `crisp_sim::gpu`) is that each
//! SM's memory traffic is buffered in its private `SmMemPort` and drained
//! into the crossbar in ascending SM-id order, reproducing the serial
//! request order exactly. These tests hold every partition policy and L2
//! policy to that contract on a mixed render+compute bundle, comparing the
//! *entire* `SimResult` — cycles, per-stream stats, L1/L2 stats, cache
//! composition, telemetry timelines, and the kernel log.

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_sim::SimResult;

/// A small GPU with enough SMs that 4 workers get uneven shards.
fn gpu() -> GpuConfig {
    let mut cfg = GpuConfig::test_tiny();
    cfg.n_sms = 6;
    cfg
}

/// A mixed bundle: one rendered frame plus the VIO kernel chain.
fn bundle() -> TraceBundle {
    let frame = Scene::build(SceneId::SponzaKhronos, 0.2).render(64, 36, false, GRAPHICS_STREAM);
    concurrent_bundle(frame.trace, vio(COMPUTE_STREAM, ComputeScale::tiny()))
}

fn run(spec: PartitionSpec, l2: Option<L2Policy>, threads: usize) -> SimResult {
    let mut b = Simulation::builder()
        .gpu(gpu())
        .partition(spec)
        .threads(threads)
        .telemetry(Telemetry::FULL)
        .occupancy_interval(100)
        .composition_interval(500)
        .counter_interval(100)
        .trace(bundle());
    if let Some(l2) = l2 {
        b = b.l2(l2);
    }
    b.run_or_panic()
}

/// Field-by-field equality of two results, with a labelled panic per field
/// so a regression names exactly what diverged.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.per_stream, b.per_stream, "{what}: per-stream stats");
    assert_eq!(a.l1_stats, b.l1_stats, "{what}: L1 stats");
    assert_eq!(a.l2_stats, b.l2_stats, "{what}: L2 stats");
    assert_eq!(a.l2_composition, b.l2_composition, "{what}: L2 composition");
    assert_eq!(
        a.l2_composition_timeline, b.l2_composition_timeline,
        "{what}: composition timeline"
    );
    assert_eq!(a.occupancy, b.occupancy, "{what}: occupancy timeline");
    assert_eq!(a.ipc_timeline, b.ipc_timeline, "{what}: IPC timeline");
    assert_eq!(a.slicer_history, b.slicer_history, "{what}: slicer history");
    assert_eq!(a.tap_allocation, b.tap_allocation, "{what}: TAP allocation");
    assert_eq!(a.kernel_log, b.kernel_log, "{what}: kernel log");
    assert_eq!(
        a.per_sm_instructions, b.per_sm_instructions,
        "{what}: per-SM instructions"
    );
    assert_eq!(
        a.per_sm_stalls, b.per_sm_stalls,
        "{what}: per-SM stall breakdowns"
    );
    assert_eq!(
        a.metrics.to_text(),
        b.metrics.to_text(),
        "{what}: metrics snapshot"
    );
    // The exported artifacts must be byte-identical, not merely
    // structurally equal — this is what lets users diff trace files
    // across machines and thread counts.
    assert_eq!(
        a.chrome_trace_json(),
        b.chrome_trace_json(),
        "{what}: Chrome trace export"
    );
    assert_eq!(a.counters_csv(), b.counters_csv(), "{what}: counters CSV");
}

fn check(name: &str, spec: PartitionSpec, l2: Option<L2Policy>) {
    let serial = run(spec.clone(), l2.clone(), 1);
    assert!(serial.cycles > 0, "{name}: simulation ran");
    for threads in [2, 4] {
        let parallel = run(spec.clone(), l2.clone(), threads);
        assert_identical(&serial, &parallel, &format!("{name} @ {threads} threads"));
    }
}

#[test]
fn greedy_is_thread_count_invariant() {
    check("greedy", PartitionSpec::greedy(), None);
}

#[test]
fn mps_is_thread_count_invariant() {
    let g = gpu();
    check(
        "mps",
        PartitionSpec::mps_even(&g, GRAPHICS_STREAM, COMPUTE_STREAM),
        None,
    );
}

#[test]
fn mig_is_thread_count_invariant() {
    let g = gpu();
    check(
        "mig",
        PartitionSpec::mig_even(&g, GRAPHICS_STREAM, COMPUTE_STREAM),
        None,
    );
}

#[test]
fn fg_static_is_thread_count_invariant() {
    let g = gpu();
    check(
        "fg-static",
        PartitionSpec::fg_even(&g, GRAPHICS_STREAM, COMPUTE_STREAM),
        None,
    );
}

#[test]
fn fg_dynamic_is_thread_count_invariant() {
    let slicer = SlicerConfig {
        sample_cycles: 300,
        ratios: vec![(2, 8), (4, 8), (6, 8)],
    };
    check("fg-dynamic", PartitionSpec::fg_dynamic(slicer), None);
}

#[test]
fn tap_l2_is_thread_count_invariant() {
    let tap = TapConfig {
        epoch_accesses: 400,
        sample_every: 1,
        min_sets: 1,
    };
    let g = gpu();
    check(
        "fg+tap",
        PartitionSpec::tap_even(&g, GRAPHICS_STREAM, COMPUTE_STREAM, tap),
        None,
    );
}

#[test]
fn bank_split_l2_is_thread_count_invariant() {
    let g = gpu();
    check(
        "mps+bank-split",
        PartitionSpec::mps_even(&g, GRAPHICS_STREAM, COMPUTE_STREAM),
        Some(L2Policy::BankSplit),
    );
}

#[test]
fn oversubscribed_thread_count_is_clamped_and_identical() {
    // More workers than SMs: the executor clamps to one SM per worker.
    let serial = run(PartitionSpec::greedy(), None, 1);
    let flooded = run(PartitionSpec::greedy(), None, 64);
    assert_identical(&serial, &flooded, "greedy @ 64 threads");
}

/// Build (don't run) the same simulation `run()` uses.
fn build_sim(spec: PartitionSpec, l2: Option<L2Policy>, threads: usize) -> GpuSim {
    let mut b = Simulation::builder()
        .gpu(gpu())
        .partition(spec)
        .threads(threads)
        .telemetry(Telemetry::FULL)
        .occupancy_interval(100)
        .composition_interval(500)
        .counter_interval(100)
        .trace(bundle());
    if let Some(l2) = l2 {
        b = b.l2(l2);
    }
    b.build()
}

/// Resume determinism: a run checkpointed mid-flight and restored must
/// finish with byte-identical results and exports — at any worker-thread
/// count on either side of the checkpoint.
fn check_resume(name: &str, spec: PartitionSpec, l2: Option<L2Policy>, ckpt_threads: usize) {
    let full = run(spec.clone(), l2.clone(), 1);
    let mut sim = build_sim(spec, l2, ckpt_threads);
    let done = sim.run_until(full.cycles / 2).unwrap();
    assert!(!done, "{name}: workload must outlast the checkpoint cycle");
    let mut bytes = Vec::new();
    sim.write_checkpoint(&mut bytes).expect("serialize");
    for threads in [1, 2, 4] {
        let mut resumed = GpuSim::read_checkpoint(&bytes[..]).expect("deserialize");
        resumed.set_threads(threads);
        let r = resumed.run_or_panic();
        assert_identical(&full, &r, &format!("{name} resume @ {threads} threads"));
    }
}

#[test]
fn greedy_resume_is_bit_identical() {
    check_resume("greedy", PartitionSpec::greedy(), None, 1);
}

#[test]
fn mig_resume_is_bit_identical() {
    let g = gpu();
    check_resume(
        "mig",
        PartitionSpec::mig_even(&g, GRAPHICS_STREAM, COMPUTE_STREAM),
        None,
        1,
    );
}

#[test]
fn fg_static_resume_from_parallel_run_is_bit_identical() {
    // The checkpoint itself is taken from a sharded (2-thread) run.
    let g = gpu();
    check_resume(
        "fg-static",
        PartitionSpec::fg_even(&g, GRAPHICS_STREAM, COMPUTE_STREAM),
        None,
        2,
    );
}

#[test]
fn periodic_checkpoint_files_resume_bit_identically() {
    let dir = std::env::temp_dir().join(format!("crisp-determinism-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let full = run(PartitionSpec::greedy(), None, 1);

    let every = (full.cycles / 3).max(1);
    let mut sim = build_sim(PartitionSpec::greedy(), None, 1);
    sim.checkpoint_every = every;
    sim.checkpoint_dir = Some(dir.clone());
    let direct = sim.run_or_panic();
    assert_identical(&full, &direct, "greedy with periodic checkpointing");

    let path = dir.join(format!("ckpt-{every}.ckpt"));
    assert!(path.exists(), "expected checkpoint at {}", path.display());
    let mut resumed = Simulation::resume(&path).expect("resume from file");
    let r = resumed.run_or_panic();
    assert_identical(&full, &r, "greedy resumed from periodic checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}
