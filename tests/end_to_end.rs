//! Cross-crate integration tests: scene → pipeline → trace → timing model.

use crisp_core::prelude::*;
use crisp_core::{simulate, Resolution, GRAPHICS_STREAM};
use crisp_trace::TraceBundle;

fn render_cycles(id: SceneId, detail: f32, w: u32, h: u32, gpu: &GpuConfig) -> u64 {
    let scene = Scene::build(id, detail);
    let f = scene.render(w, h, false, GRAPHICS_STREAM);
    simulate(
        gpu.clone(),
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![f.trace]),
    )
    .cycles
}

#[test]
fn more_pixels_cost_more_cycles() {
    // The paper's Figure 6 shows the framework "correctly projects the
    // slowdown introduced by extra rendered pixels".
    let gpu = GpuConfig::test_tiny();
    let small = render_cycles(SceneId::SponzaKhronos, 0.2, 96, 54, &gpu);
    let large = render_cycles(SceneId::SponzaKhronos, 0.2, 192, 108, &gpu);
    assert!(
        large as f64 > small as f64 * 1.5,
        "4x pixels must cost clearly more: {small} -> {large}"
    );
}

#[test]
fn vertex_bound_scene_scales_sublinearly_with_resolution() {
    // Planets is vertex-bound: "despite 4X more pixels needing to be
    // shaded, scaling from 2K to 4K is only 20% slower". At test scale we
    // assert the scaling is much weaker than fragment-bound scenes'.
    let gpu = GpuConfig::test_tiny();
    let s = render_cycles(SceneId::Planets, 0.4, 96, 54, &gpu);
    let l = render_cycles(SceneId::Planets, 0.4, 192, 108, &gpu);
    let planets_scaling = l as f64 / s as f64;
    let s2 = render_cycles(SceneId::SponzaKhronos, 0.2, 96, 54, &gpu);
    let l2 = render_cycles(SceneId::SponzaKhronos, 0.2, 192, 108, &gpu);
    let sponza_scaling = l2 as f64 / s2 as f64;
    assert!(
        planets_scaling < sponza_scaling,
        "vertex-bound scene must scale less with resolution: planets {planets_scaling:.2} vs sponza {sponza_scaling:.2}"
    );
}

#[test]
fn pbr_frames_cost_more_than_basic() {
    let gpu = GpuConfig::test_tiny();
    let basic = render_cycles(SceneId::SponzaKhronos, 0.2, 96, 54, &gpu);
    let pbr = render_cycles(SceneId::SponzaPbr, 0.2, 96, 54, &gpu);
    assert!(
        pbr as f64 > basic as f64 * 1.5,
        "8-map PBR must cost more: basic {basic}, pbr {pbr}"
    );
}

#[test]
fn lod_off_increases_l1_texture_accesses_in_simulation() {
    // Figure 9 end-to-end: replay both traces through the timing model and
    // compare actual unified-L1 texture accesses.
    let gpu = GpuConfig::test_tiny();
    let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
    let run = |lod0: bool| {
        let f = scene.render(128, 72, lod0, GRAPHICS_STREAM);
        let r = simulate(
            gpu.clone(),
            PartitionSpec::greedy(),
            TraceBundle::from_streams(vec![f.trace]),
        );
        r.l1_stats.class_total(DataClass::Texture).accesses
    };
    let on = run(false);
    let off = run(true);
    assert!(
        off as f64 > on as f64 * 2.0,
        "disabling LoD must inflate L1 texture accesses: {on} -> {off}"
    );
}

#[test]
fn orin_and_rtx_both_complete_graphics_frames() {
    for gpu in [GpuConfig::jetson_orin(), GpuConfig::rtx3070()] {
        let scene = Scene::build(SceneId::MaterialTesters, 0.2);
        let (w, h) = Resolution::Tiny.dims();
        let f = scene.render(w, h, false, GRAPHICS_STREAM);
        let r = simulate(
            gpu.clone(),
            PartitionSpec::greedy(),
            TraceBundle::from_streams(vec![f.trace]),
        );
        let st = &r.per_stream[&GRAPHICS_STREAM].stats;
        assert!(st.instructions > 0, "{}", gpu.name);
        assert!(
            st.kernels >= 2 * 9,
            "{}: one VS+FS pair per drawcall",
            gpu.name
        );
        assert!(r.l2_stats.total().hit_rate() > 0.0, "{}", gpu.name);
    }
}

#[test]
fn bigger_gpu_finishes_faster() {
    let scene = Scene::build(SceneId::SponzaPbr, 0.3);
    let f_orin = scene.render(160, 90, false, GRAPHICS_STREAM);
    let f_rtx = scene.render(160, 90, false, GRAPHICS_STREAM);
    let orin = simulate(
        GpuConfig::jetson_orin(),
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![f_orin.trace]),
    )
    .cycles;
    let rtx = simulate(
        GpuConfig::rtx3070(),
        PartitionSpec::greedy(),
        TraceBundle::from_streams(vec![f_rtx.trace]),
    )
    .cycles;
    assert!(rtx < orin, "46 SMs must beat 14: orin {orin}, rtx {rtx}");
}

#[test]
fn simulation_is_deterministic() {
    let gpu = GpuConfig::test_tiny();
    let run = || {
        let scene = Scene::build(SceneId::Platformer, 0.2);
        let f = scene.render(96, 54, false, GRAPHICS_STREAM);
        let compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale::tiny());
        let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, crisp_core::COMPUTE_STREAM);
        let r = simulate(
            gpu.clone(),
            spec,
            crisp_core::concurrent_bundle(f.trace, compute),
        );
        (
            r.cycles,
            r.per_stream[&GRAPHICS_STREAM].stats.instructions,
            r.l2_stats.total().accesses,
        )
    };
    assert_eq!(run(), run(), "two identical runs must match exactly");
}

#[test]
fn framebuffer_and_trace_agree_on_fragment_count() {
    let scene = Scene::build(SceneId::Pistol, 0.2);
    let f = scene.render(128, 72, false, GRAPHICS_STREAM);
    // Every shaded fragment stores exactly one colour; a fragment kernel
    // lane count equals the fragment count.
    let fs_threads: u64 = f
        .trace
        .kernels()
        .filter(|k| k.name.starts_with("fs:"))
        .map(|k| {
            k.ctas
                .iter()
                .flat_map(|c| c.warps.iter())
                .map(|w| {
                    // Count lanes of the colour store (the last store).
                    w.iter()
                        .filter_map(|i| i.mem.as_ref())
                        .rfind(|m| m.space == crisp_trace::Space::Global && !m.addrs.is_empty())
                        .map(|m| m.addrs.len() as u64)
                        .unwrap_or(0)
                })
                .sum::<u64>()
        })
        .sum();
    assert_eq!(
        fs_threads,
        f.stats.fragments(),
        "colour stores must cover every fragment"
    );
}

#[test]
fn front_to_back_draw_order_shades_fewer_fragments() {
    // Early-Z only helps when occluders are drawn first: reversing the
    // draw order of an occluded scene must increase shaded fragments
    // (overdraw), never decrease them.
    let scene = Scene::build(SceneId::Platformer, 0.3);
    let forward = scene.render(160, 90, false, GRAPHICS_STREAM);
    let mut reversed_scene = scene.clone();
    reversed_scene.draws.reverse();
    let reversed = reversed_scene.render(160, 90, false, GRAPHICS_STREAM);
    // Same final image coverage either way (z-buffering is order-independent
    // for opaque geometry) ...
    assert_eq!(
        forward.framebuffer.coverage(),
        reversed.framebuffer.coverage()
    );
    // ... but the shaded-fragment count depends on the order.
    assert_ne!(
        forward.stats.fragments(),
        reversed.stats.fragments(),
        "draw order must change overdraw"
    );
}

#[test]
fn rendering_is_deterministic_at_the_pixel_level() {
    let scene = Scene::build(SceneId::MaterialTesters, 0.2);
    let a = scene.render(128, 72, false, GRAPHICS_STREAM);
    let b = scene.render(128, 72, false, GRAPHICS_STREAM);
    assert!(
        a.framebuffer.psnr(&b.framebuffer).is_infinite(),
        "identical frames"
    );
    assert_eq!(a.trace, b.trace, "identical traces");
}
