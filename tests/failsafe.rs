//! Fail-safe behaviour: structured errors instead of panics, the pre-flight
//! validator, and the forward-progress watchdog.
//!
//! The canonical deadlock is a CTA whose barrier waits on a warp that can
//! never arrive — here, a warp whose trace ends without `Exit`. Pre-flight
//! validation rejects that trace in milliseconds; with validation disabled
//! (`.preflight(false)`), the watchdog catches it at runtime and returns
//! [`SimError::Deadlock`] with the culprit CTA named — identically at any
//! worker-thread count — plus an emergency checkpoint that
//! [`Simulation::resume`] accepts.

use crisp_sim::{GpuConfig, SimError, Simulation, WarpStall};
use crisp_trace::{
    CtaTrace, Instr, KernelTrace, MemAccess, Op, Reg, Space, Stream, StreamId, StreamKind,
    TraceBundle, TraceErrorKind, WarpTrace,
};

const S: StreamId = StreamId(0);

/// A CTA that deadlocks at runtime: warp 0 executes a barrier (then exits),
/// but warp 1's trace ends without `Exit`, so it never arrives and never
/// retires — the barrier can never release.
fn deadlock_bundle() -> TraceBundle {
    let mut barrier_warp = WarpTrace::new();
    barrier_warp.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
    barrier_warp.push(Instr::bar());
    barrier_warp.seal();
    let mut truncated_warp = WarpTrace::new();
    truncated_warp.push(Instr::alu(Op::IntAlu, Reg(2), &[]));
    // No seal(): the trace ends without Exit.
    let k = KernelTrace::new(
        "wedged",
        64,
        8,
        0,
        vec![CtaTrace::new(vec![barrier_warp, truncated_warp])],
    );
    let mut s = Stream::new(S, StreamKind::Compute);
    s.launch(k);
    TraceBundle::from_streams(vec![s])
}

fn gpu() -> GpuConfig {
    let mut cfg = GpuConfig::test_tiny();
    cfg.n_sms = 4;
    cfg
}

/// A unique scratch directory under the system temp dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("crisp-failsafe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn preflight_rejects_the_deadlocking_trace_in_milliseconds() {
    let err = Simulation::builder()
        .gpu(gpu())
        .trace(deadlock_bundle())
        .run()
        .expect_err("pre-flight must reject the unterminated warp");
    let SimError::InvalidTrace { errors } = &err else {
        panic!("expected InvalidTrace, got {err}");
    };
    assert!(
        errors
            .iter()
            .any(|e| e.kind == TraceErrorKind::UnterminatedWarp && e.site.warp == Some(1)),
        "the unterminated warp is named: {err}"
    );
    assert!(err.cycle().is_none(), "pre-flight errors have no cycle");
    assert!(err.to_string().contains("kernel 'wedged'"), "{err}");
}

#[test]
fn watchdog_names_the_culprit_cta_identically_at_any_thread_count() {
    let mut reports = Vec::new();
    for threads in [1usize, 2, 4] {
        let err = Simulation::builder()
            .gpu(gpu())
            .threads(threads)
            .preflight(false)
            .watchdog(2_000)
            .trace(deadlock_bundle())
            .run()
            .expect_err("the wedged barrier must trip the watchdog");
        let SimError::Deadlock { window, ctx } = &err else {
            panic!("expected Deadlock at {threads} threads, got {err}");
        };
        assert_eq!(*window, 2_000);
        let culprits = ctx.report.culprits();
        assert_eq!(
            culprits,
            vec![(0, S, 0)],
            "culprit CTA named at {threads} threads"
        );
        assert!(
            ctx.report.sms[0]
                .warps
                .iter()
                .any(|w| w.stall == WarpStall::TraceExhausted),
            "per-warp stall cause surfaces the exhausted trace"
        );
        let rendered = err.to_string();
        assert!(rendered.contains("at barrier"), "{rendered}");
        assert!(rendered.contains("trace ended without Exit"), "{rendered}");
        reports.push((ctx.cycle, rendered));
    }
    assert_eq!(
        reports[0], reports[1],
        "1- and 2-thread diagnostics must be identical"
    );
    assert_eq!(
        reports[0], reports[2],
        "1- and 4-thread diagnostics must be identical"
    );
}

#[test]
fn deadlock_leaves_a_loadable_emergency_checkpoint() {
    let dir = scratch("emergency");
    let err = Simulation::builder()
        .gpu(gpu())
        .preflight(false)
        .watchdog(1_000)
        .checkpoint_to(&dir)
        .trace(deadlock_bundle())
        .run()
        .expect_err("deadlock");
    let SimError::Deadlock { ctx, .. } = &err else {
        panic!("expected Deadlock, got {err}");
    };
    let path = ctx
        .emergency_checkpoint
        .as_ref()
        .expect("an emergency checkpoint was written");
    assert!(path.starts_with(&dir));
    let resumed = Simulation::resume(path).expect("the emergency checkpoint must load");
    assert_eq!(
        resumed.now(),
        ctx.cycle,
        "the checkpoint captures the failure cycle"
    );
    assert!(
        err.to_string().contains("emergency checkpoint written"),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_zero_disables_and_the_cycle_budget_still_catches_it() {
    let mut cfg = gpu();
    cfg.max_cycles = 5_000;
    let err = Simulation::builder()
        .gpu(cfg)
        .preflight(false)
        .watchdog(0)
        .trace(deadlock_bundle())
        .run()
        .expect_err("budget");
    assert!(
        matches!(
            err,
            SimError::CycleBudgetExceeded {
                max_cycles: 5_000,
                ..
            }
        ),
        "got {err}"
    );
}

#[test]
fn worker_panic_is_caught_at_the_shard_barrier() {
    // A register past the scoreboard range panics inside Sm::cycle on a
    // worker thread; the pool must catch it and return WorkerPanic instead
    // of propagating a poisoned mutex.
    let mut w = WarpTrace::new();
    w.push(Instr::alu(Op::IntAlu, Reg(300), &[]));
    w.seal();
    let k = KernelTrace::new("hot", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
    let mut s = Stream::new(S, StreamKind::Compute);
    s.launch(k);
    let err = Simulation::builder()
        .gpu(gpu())
        .threads(2)
        .preflight(false)
        .trace(TraceBundle::from_streams(vec![s]))
        .run()
        .expect_err("the worker panic must surface as an error");
    let SimError::WorkerPanic { message, ctx } = &err else {
        panic!("expected WorkerPanic, got {err}");
    };
    assert!(
        message.contains("scoreboard"),
        "payload captured: {message}"
    );
    assert_eq!(
        ctx.report.sms.len(),
        4,
        "shard SMs recovered for the report"
    );
}

#[test]
fn preflight_cross_checks_config_against_the_gpu() {
    use crisp_sim::{PartitionSpec, SmPartition};
    use std::collections::HashMap;

    // Partition assigns an SM index the GPU does not have.
    let mut map = HashMap::new();
    map.insert(S, vec![0usize, 9]);
    let spec = PartitionSpec {
        sm: SmPartition::InterSm(map),
        l2: crisp_sim::L2Policy::Shared,
    };
    let err = Simulation::builder()
        .gpu(gpu())
        .partition(spec)
        .trace(deadlock_bundle_valid())
        .run()
        .expect_err("SM index out of range");
    assert!(
        matches!(&err, SimError::InvalidConfig { message } if message.contains("SM 9")),
        "got {err}"
    );

    // A kernel whose CTA can never be placed on this SM.
    let mut w = WarpTrace::new();
    w.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
    w.seal();
    let hog = KernelTrace::new("hog", 64, 40_000, 0, vec![CtaTrace::new(vec![w; 2])]);
    let mut s = Stream::new(S, StreamKind::Compute);
    s.launch(hog);
    let err = Simulation::builder()
        .gpu(gpu())
        .trace(TraceBundle::from_streams(vec![s]))
        .run()
        .expect_err("unplaceable kernel");
    assert!(
        matches!(&err, SimError::InvalidConfig { message } if message.contains("hog")),
        "got {err}"
    );

    // A fast-forward marker that exists in no stream.
    let err = Simulation::builder()
        .gpu(gpu())
        .trace(deadlock_bundle_valid())
        .fast_forward_to("nonexistent")
        .run()
        .expect_err("missing marker");
    assert!(
        matches!(&err, SimError::InvalidConfig { message } if message.contains("nonexistent")),
        "got {err}"
    );

    // A checkpoint directory that is actually a file.
    let dir = scratch("not-a-dir");
    let file = dir.join("occupied");
    std::fs::write(&file, b"x").unwrap();
    let err = Simulation::builder()
        .gpu(gpu())
        .trace(deadlock_bundle_valid())
        .checkpoint_every(100)
        .checkpoint_to(&file)
        .run()
        .expect_err("unwritable checkpoint dir");
    assert!(
        matches!(&err, SimError::InvalidConfig { message } if message.contains("not writable")),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A well-formed single-kernel bundle (the valid counterpart used by the
/// config cross-check tests).
fn deadlock_bundle_valid() -> TraceBundle {
    let mut w = WarpTrace::new();
    w.push(Instr::load(
        Reg(1),
        MemAccess::coalesced(Space::Global, crisp_trace::DataClass::Compute, 4, 0, 32),
    ));
    w.push(Instr::alu(Op::FpFma, Reg(2), &[Reg(1)]));
    w.seal();
    let k = KernelTrace::new("ok", 64, 8, 0, vec![CtaTrace::new(vec![w; 2]); 2]);
    let mut s = Stream::new(S, StreamKind::Compute);
    s.launch(k);
    TraceBundle::from_streams(vec![s])
}

#[test]
fn validator_rejects_malformed_memory_payloads_before_the_run() {
    let naked_load = Instr {
        op: Op::Ld(Space::Global),
        dst: Some(Reg(1)),
        srcs: [None; crisp_trace::MAX_SRCS],
        mem: None,
    };
    let mut w = WarpTrace::new();
    w.push(naked_load);
    w.seal();
    let k = KernelTrace::new("bad-mem", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
    let mut s = Stream::new(S, StreamKind::Compute);
    s.launch(k);
    let err = Simulation::builder()
        .gpu(gpu())
        .trace(TraceBundle::from_streams(vec![s]))
        .run()
        .expect_err("missing payload");
    let SimError::InvalidTrace { errors } = &err else {
        panic!("expected InvalidTrace, got {err}");
    };
    assert!(errors
        .iter()
        .any(|e| e.kind == TraceErrorKind::MissingMemPayload));
}
