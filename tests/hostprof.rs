//! Host self-profiler integration: the profile is populated, accurate, and
//! — the load-bearing property — *purely observational*. Enabling it must
//! not change a single simulated bit, at any thread count.
//!
//! (The companion zero-allocation suite lives in `hostprof_alloc.rs`, in
//! its own test binary, because it has to install the counting allocator
//! process-wide.)

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_obs::HostPhase;
use crisp_sim::SimResult;

/// A small GPU with enough SMs that 4 workers get uneven shards.
fn gpu() -> GpuConfig {
    let mut cfg = GpuConfig::test_tiny();
    cfg.n_sms = 6;
    cfg
}

/// A mixed bundle: one rendered frame plus the VIO kernel chain.
fn bundle() -> TraceBundle {
    let frame = Scene::build(SceneId::SponzaKhronos, 0.2).render(64, 36, false, GRAPHICS_STREAM);
    concurrent_bundle(frame.trace, vio(COMPUTE_STREAM, ComputeScale::tiny()))
}

fn run(threads: usize, profile: bool) -> SimResult {
    Simulation::builder()
        .gpu(gpu())
        .partition(PartitionSpec::fg_even(
            &gpu(),
            GRAPHICS_STREAM,
            COMPUTE_STREAM,
        ))
        .threads(threads)
        .telemetry(Telemetry::FULL)
        .occupancy_interval(100)
        .counter_interval(100)
        .host_profile(profile)
        .heartbeat_interval(500)
        .trace(bundle())
        .run_or_panic()
}

#[test]
fn serial_profile_is_populated() {
    let result = run(1, true);
    let prof = result.host_profile.as_ref().expect("profile present");
    assert_eq!(prof.cycles, result.cycles);
    assert!(prof.wall_ns > 0);
    assert_eq!(prof.workers, 0, "serial run has no shard workers");
    assert!(prof.shards.is_empty());

    // The serial cycle loop must attribute time to its core phases.
    for phase in [HostPhase::Dispatch, HostPhase::Execute, HostPhase::MemTick] {
        assert!(
            prof.driver.get(phase) > 0,
            "phase {} has no attributed time",
            phase.name()
        );
    }
    // Preflight/Export spans were recorded by the builder and result().
    assert!(prof.spans.iter().any(|s| s.phase == HostPhase::Preflight));
    assert!(prof.spans.iter().any(|s| s.phase == HostPhase::Export));

    // Telemetry::FULL at tight intervals costs time the profiler must see.
    assert!(prof.driver.get(HostPhase::Telemetry) > 0);

    // Heartbeats fire every 500 cycles; the run is comfortably longer.
    assert!(result.cycles > 500, "workload too small to heartbeat");
    assert!(!prof.heartbeats.is_empty());
    assert!(prof.heartbeats.iter().all(|h| h.cycle % 500 == 0));
    assert!(prof.heartbeats[0].cycles_per_sec > 0.0);

    // Accuracy contract (the hostprof bin gates CI on 0.90 at scale; the
    // tiny test workload still has to be in a sane band).
    let cov = prof.coverage();
    assert!(cov > 0.5, "driver coverage {cov} suspiciously low");
    assert!(cov < 1.5, "driver coverage {cov} exceeds wall-clock");

    // The rendered report names the headline sections.
    let report = result.host_report();
    assert!(report.contains("CRISP self-profile"));
    assert!(report.contains("driver phases"));
    assert!(report.contains("execute"));
}

#[test]
fn sharded_profile_attributes_worker_time() {
    let result = run(4, true);
    let prof = result.host_profile.as_ref().expect("profile present");
    // 6 SMs at 4 requested threads shard into ceil(6/ceil(6/4)) = 3 chunks;
    // the profiler reports the *actual* worker count, not the request.
    assert_eq!(prof.workers, 3);
    assert_eq!(prof.shards.len(), prof.workers);
    for (i, s) in prof.shards.iter().enumerate() {
        assert!(s.cycles > 0, "shard {i} recorded no cycles");
        assert!(s.execute_ns > 0, "shard {i} recorded no execute time");
    }
    assert!(prof.shard_imbalance() >= 1.0);
    assert!(prof.shard_coverage() > 0.0);
    let report = result.host_report();
    assert!(report.contains("shard workers"));
    assert!(report.contains("imbalance"));
}

#[test]
fn disabled_profile_is_absent() {
    let result = run(1, false);
    assert!(result.host_profile.is_none());
    assert!(result.host_report().contains("disabled"));
    // The host-aware export degrades to the plain sim-clock export.
    assert_eq!(
        result.chrome_trace_json_with_host(),
        result.chrome_trace_json()
    );
}

#[test]
fn dual_clock_export_adds_host_process_only() {
    let result = run(2, true);
    let plain = result.chrome_trace_json();
    let dual = result.chrome_trace_json_with_host();
    assert!(crisp_obs::json::validate(&dual).is_ok());
    assert!(dual.contains("host self-profile"));
    assert!(dual.contains("barrier-wait"));
    // Every sim-clock (pid 0) event survives untouched in the dual export.
    // The last line carries the `]}` JSON footer; others a trailing comma.
    for line in plain.lines().filter(|l| l.contains("\"pid\":0")) {
        let event = line
            .strip_suffix("]}")
            .unwrap_or(line)
            .trim_end_matches(',');
        assert!(
            dual.contains(event),
            "sim-clock event missing from dual export: {event}"
        );
    }
}

/// The determinism contract with profiling ENABLED: simulated outputs are
/// byte-identical to an unprofiled run and across thread counts. Host spans
/// live only in `host_profile` / the dual-clock export, which are excluded
/// from the comparison (wall-clock is inherently nondeterministic).
#[test]
fn profiling_never_perturbs_simulated_outputs() {
    let base = run(1, false);
    for (what, result) in [
        ("serial profiled", run(1, true)),
        ("2 threads profiled", run(2, true)),
        ("4 threads profiled", run(4, true)),
    ] {
        assert_eq!(base.cycles, result.cycles, "{what}: cycles");
        assert_eq!(base.per_stream, result.per_stream, "{what}: per-stream");
        assert_eq!(base.l2_stats, result.l2_stats, "{what}: L2 stats");
        assert_eq!(base.kernel_log, result.kernel_log, "{what}: kernel log");
        assert_eq!(
            base.per_sm_instructions, result.per_sm_instructions,
            "{what}: per-SM instructions"
        );
        assert_eq!(
            base.metrics.to_text(),
            result.metrics.to_text(),
            "{what}: metrics snapshot"
        );
        assert_eq!(
            base.chrome_trace_json(),
            result.chrome_trace_json(),
            "{what}: sim-clock chrome trace"
        );
        assert_eq!(
            base.counters_csv(),
            result.counters_csv(),
            "{what}: counters CSV"
        );
    }
}
