//! Zero-overhead opt-out: with `Telemetry::NONE` and host profiling
//! disabled, the simulator's steady-state cycle hot path must not touch the
//! allocator at all.
//!
//! This binary installs the counting global allocator (feature
//! `alloc-profile`, `required-features` in the Cargo manifest) and is kept
//! to a SINGLE test: the counters are process-global, and the libtest
//! harness runs tests on concurrent threads, so a second test in this
//! binary would pollute the window measurement.

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_obs::alloc;

#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Cycles the machine runs before we start looking for a clean window
/// (CTA launches, cache warm-up, and stat-map inserts happen early).
const WARMUP_CYCLES: u64 = 500;
/// Length of the allocation-free window the hot path must exhibit.
const WINDOW: u64 = 100;
/// How many cycles we are willing to scan for that window before giving up.
const SCAN_LIMIT: u64 = 20_000;

#[test]
fn steady_state_hot_path_is_allocation_free() {
    // Sanity: the counting allocator actually observes this binary.
    alloc::reset();
    alloc::enable();
    let v: Vec<u64> = Vec::with_capacity(32);
    drop(std::hint::black_box(v));
    alloc::disable();
    assert!(alloc::total_count() > 0, "counting allocator not installed");
    alloc::reset();

    let mut gpu = GpuConfig::test_tiny();
    gpu.n_sms = 4;
    let frame = Scene::build(SceneId::SponzaKhronos, 0.2).render(64, 36, false, GRAPHICS_STREAM);
    let bundle = concurrent_bundle(frame.trace, vio(COMPUTE_STREAM, ComputeScale::tiny()));
    let mut sim = Simulation::builder()
        .gpu(gpu)
        .threads(1)
        .telemetry(Telemetry::NONE)
        .trace(bundle)
        .build();

    let finished = sim.run_until(WARMUP_CYCLES).expect("warm-up run");
    assert!(
        !finished,
        "workload drained within the warm-up window — grow the trace"
    );

    // Single-step the serial cycle loop, counting allocations per cycle,
    // until we see WINDOW consecutive allocation-free cycles. Kernel
    // completions and fresh CTA launches legitimately allocate, so the
    // contract is "a steady-state window exists", not "every cycle is
    // clean" — but the window must show up well before the scan limit.
    let mut clean = 0u64;
    let mut best = 0u64;
    let mut dirty_cycles = 0u64;
    while best < WINDOW && sim.now() < WARMUP_CYCLES + SCAN_LIMIT {
        alloc::reset();
        alloc::enable();
        let stepped = sim.step();
        alloc::disable();
        stepped.expect("step");
        if alloc::total_count() == 0 {
            clean += 1;
            best = best.max(clean);
        } else {
            clean = 0;
            dirty_cycles += 1;
        }
        // Stop scanning once the machine drains: a parked simulator
        // trivially stops allocating, which would be a vacuous pass.
        if sim.run_until(sim.now()).expect("drain probe") {
            break;
        }
    }

    assert!(
        best >= WINDOW,
        "no {WINDOW}-cycle allocation-free window in {SCAN_LIMIT} cycles \
         ({dirty_cycles} allocating cycles seen) — the Telemetry::NONE hot \
         path regressed to allocating per cycle"
    );
}
