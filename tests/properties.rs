//! Property-based tests over core data structures and invariants.

use proptest::prelude::*;

use crisp_gfx::{batch, FilterMode, Texture, TextureFormat, Vec2};
use crisp_mem::{
    AccessKind, BankMap, CacheCore, CacheGeometry, DataClass, MemReq, ReqToken, StreamId,
    TapConfig, TapController,
};
use crisp_sim::{GpuConfig, GpuSim, PartitionSpec};
use crisp_trace::{
    CtaTrace, Instr, KernelTrace, MemAccess, Op, Reg, Space, Stream, StreamKind, TraceBundle,
    WarpTrace,
};

const TOK: ReqToken = ReqToken { sm: 0, id: 0 };

proptest! {
    /// Batching never exceeds the batch size and always covers every
    /// triangle exactly once.
    #[test]
    fn batches_cover_all_triangles(
        tris in proptest::collection::vec((0u32..64, 0u32..64, 0u32..64), 1..200),
        batch_size in 3usize..128,
    ) {
        let indices: Vec<u32> = tris.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
        let batches = batch::vertex_batches(&indices, batch_size);
        let total_prims: usize = batches.iter().map(|b| b.prims.len()).sum();
        prop_assert_eq!(total_prims, tris.len());
        for b in &batches {
            prop_assert!(b.unique.len() <= batch_size);
            // Every prim slot refers into the unique list and resolves to
            // the original vertex ids.
            for p in &b.prims {
                for &slot in p {
                    prop_assert!((slot as usize) < b.unique.len());
                }
            }
        }
    }

    /// Invocation counts are monotonically non-increasing in batch size and
    /// bounded by [unique, 3 × prims].
    #[test]
    fn batching_invocation_bounds(
        tris in proptest::collection::vec((0u32..32, 0u32..32, 0u32..32), 1..100),
    ) {
        let indices: Vec<u32> = tris.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
        let small = batch::vs_invocation_count(&indices, 4);
        let big = batch::vs_invocation_count(&indices, 96);
        prop_assert!(big <= small, "bigger batches cannot shade more: {} vs {}", big, small);
        let mut unique = indices.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert!(big >= unique.len() as u64);
        prop_assert!(small <= indices.len() as u64);
    }

    /// Coalescing: distinct chunk count is bounded by lane count and chunk
    /// arithmetic is consistent across granularities.
    #[test]
    fn mem_access_chunking(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..32),
        width in prop_oneof![Just(1u8), Just(4u8), Just(8u8), Just(16u8)],
    ) {
        let m = MemAccess::scattered(Space::Global, crisp_trace::DataClass::Compute, width, addrs.clone());
        let sectors = m.distinct_chunks(32);
        let lines = m.distinct_chunks(128);
        prop_assert!(!sectors.is_empty());
        prop_assert!(lines.len() <= sectors.len(), "lines cannot outnumber sectors");
        prop_assert!(sectors.len() <= addrs.len() * 2, "a lane touches at most 2 sectors");
        // Every sector's line must appear in the line set.
        for s in &sectors {
            prop_assert!(lines.contains(&(s * 32 / 128)));
        }
    }

    /// Cache invariant: after a fill, reading the same sector hits, and the
    /// composition never exceeds capacity.
    #[test]
    fn cache_fill_then_hit(
        addrs in proptest::collection::vec(0u64..(1u64 << 20), 1..200),
    ) {
        let mut c = CacheCore::new(CacheGeometry { size_bytes: 16 << 10, assoc: 4 });
        let w = (0, c.num_sets());
        for &a in &addrs {
            let r = MemReq::read(a, StreamId(0), DataClass::Compute, TOK);
            let _ = c.access(&r, AccessKind::Read, w);
            let _ = c.fill(r.line_addr(), r.sector_in_line(), StreamId(0), DataClass::Compute, false, w);
            // Immediately after the fill the sector must be present.
            let again = c.access(&r, AccessKind::Read, w);
            prop_assert_eq!(again, crisp_mem::AccessOutcome::Hit);
        }
        let comp = c.composition();
        prop_assert!(comp.valid_lines() <= comp.capacity_lines);
    }

    /// TAP windows always tile the bank exactly, regardless of workload.
    #[test]
    fn tap_windows_always_tile(
        accesses in proptest::collection::vec((0u32..2, 0u64..4096), 0..3000),
        sets in 8u64..128,
    ) {
        let cfg = TapConfig { epoch_accesses: 500, sample_every: 1, min_sets: 1 };
        let mut t = TapController::new(vec![StreamId(0), StreamId(1)], sets, 16, cfg);
        for (s, line) in accesses {
            t.observe(StreamId(s), line * 128);
        }
        let alloc = t.allocation();
        let total: u64 = alloc.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, sets);
        for (_, n) in alloc {
            prop_assert!(n >= 1, "every stream keeps its floor");
        }
        // Windows are contiguous and disjoint.
        let (s0, n0) = t.window(StreamId(0));
        let (s1, n1) = t.window(StreamId(1));
        prop_assert_eq!(s0, 0);
        prop_assert_eq!(s1, n0);
        prop_assert_eq!(n0 + n1, sets);
    }

    /// Bank maps always return a bank the stream is allowed to use.
    #[test]
    fn bank_map_respects_masks(addr in 0u64..(1u64 << 30), n_banks in 2u32..32) {
        let a = StreamId(0);
        let b = StreamId(1);
        let m = BankMap::mig_even_split(n_banks, a, b);
        let ba = m.bank_of(a, addr);
        let bb = m.bank_of(b, addr);
        prop_assert!(m.banks_for(a).contains(&ba));
        prop_assert!(m.banks_for(b).contains(&bb));
        prop_assert_ne!(ba, bb, "even split keeps the streams on disjoint banks");
    }

    /// Texture sampling never produces addresses outside the texture's
    /// allocation, at any LoD, for any UV.
    #[test]
    fn texture_samples_stay_in_bounds(
        u in -4.0f32..4.0,
        v in -4.0f32..4.0,
        lod in 0.0f32..12.0,
        size_pow in 2u32..9,
    ) {
        let size = 1 << size_pow;
        let base = 0x10_0000u64;
        let t = Texture::new("t", size, size, 1, TextureFormat::Rgba8, FilterMode::Bilinear, base);
        for addr in t.sample_addrs(Vec2::new(u, v), lod, 0, false) {
            prop_assert!(addr >= base);
            prop_assert!(addr < base + t.size_bytes());
        }
    }

    /// Higher LoD never increases the distinct-texel footprint of a fixed
    /// set of UVs (the Figure 7 merging property, generalised).
    #[test]
    fn mip_levels_monotonically_merge(
        uvs in proptest::collection::vec((0.0f32..1.0, 0.0f32..1.0), 4..32),
    ) {
        let t = Texture::new("t", 256, 256, 1, TextureFormat::Rgba8, FilterMode::Nearest, 0);
        let mut prev = usize::MAX;
        for level in 0..t.levels() {
            let mut addrs: Vec<u64> = uvs
                .iter()
                .flat_map(|&(u, v)| t.sample_addrs(Vec2::new(u, v), level as f32, 0, false))
                .collect();
            addrs.sort_unstable();
            addrs.dedup();
            prop_assert!(addrs.len() <= prev,
                "level {} has {} texels, previous had {}", level, addrs.len(), prev);
            prev = addrs.len();
        }
        // The top level is a single texel.
        prop_assert_eq!(prev, 1);
    }
}

/// Build a random-but-valid warp trace from a proptest recipe.
fn warp_from_recipe(ops: &[(u8, u64)], cta_id: u64) -> WarpTrace {
    let mut w = WarpTrace::new();
    for (i, &(kind, val)) in ops.iter().enumerate() {
        let dst = Reg(1 + (i % 20) as u16);
        match kind % 6 {
            0 => w.push(Instr::alu(Op::FpFma, dst, &[Reg(1 + (val % 20) as u16)])),
            1 => w.push(Instr::alu(Op::IntAlu, dst, &[])),
            2 => w.push(Instr::alu(Op::Sfu, dst, &[Reg(1 + (val % 20) as u16)])),
            3 => w.push(Instr::load(
                dst,
                MemAccess::coalesced(
                    Space::Global,
                    DataClass::Compute,
                    4,
                    (cta_id * 0x1_0000 + val % 0x8000) & !3,
                    32,
                ),
            )),
            4 => w.push(Instr::store(
                Reg(1 + (val % 20) as u16),
                MemAccess::coalesced(
                    Space::Global,
                    DataClass::Compute,
                    4,
                    0x100_0000 + (cta_id * 0x1_0000 + val % 0x8000) & !3,
                    32,
                ),
            )),
            _ => w.push(Instr::load(
                dst,
                MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
            )),
        }
    }
    w.seal();
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Fuzz: any structurally-valid kernel mix must run to completion on
    /// the simulator without deadlock or panic, and conservation laws must
    /// hold (CTAs committed == CTAs launched, instructions issued == trace
    /// instructions).
    #[test]
    fn random_kernels_always_complete(
        kernels in proptest::collection::vec(
            (
                proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..40), // warp recipe
                1usize..4,  // warps per CTA
                1usize..6,  // CTAs
                8u32..48,   // regs per thread
            ),
            1..4,
        ),
    ) {
        let mut stream = Stream::new(StreamId(0), StreamKind::Compute);
        let mut expected_instrs = 0u64;
        let mut expected_ctas = 0u64;
        for (ki, (recipe, warps, ctas, regs)) in kernels.iter().enumerate() {
            let ctav: Vec<CtaTrace> = (0..*ctas)
                .map(|c| {
                    CtaTrace::new(
                        (0..*warps).map(|_| warp_from_recipe(recipe, c as u64)).collect(),
                    )
                })
                .collect();
            let k = KernelTrace::new(
                format!("fuzz{ki}"),
                32 * *warps as u32,
                *regs,
                0,
                ctav,
            );
            expected_instrs += k.instr_count() as u64;
            expected_ctas += k.grid() as u64;
            stream.launch(k);
        }
        let mut gpu = GpuSim::new(GpuConfig::test_tiny(), PartitionSpec::greedy());
        gpu.occupancy_interval = 0;
        gpu.load(TraceBundle::from_streams(vec![stream]));
        let r = gpu.run();
        let st = &r.per_stream[&StreamId(0)].stats;
        prop_assert_eq!(st.instructions, expected_instrs, "every instruction must issue");
        prop_assert_eq!(st.ctas, expected_ctas, "every CTA must commit");
        prop_assert!(st.finish_cycle > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Codec: any bundle the fuzz generator produces survives a binary
    /// round trip bit-exactly.
    #[test]
    fn codec_roundtrips_random_bundles(
        kernels in proptest::collection::vec(
            (
                proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..20),
                1usize..3,
                1usize..4,
                8u32..48,
            ),
            1..3,
        ),
        marker in "[a-z]{0,12}",
    ) {
        let mut stream = Stream::new(StreamId(7), StreamKind::Compute);
        stream.marker(marker);
        for (ki, (recipe, warps, ctas, regs)) in kernels.iter().enumerate() {
            let ctav: Vec<CtaTrace> = (0..*ctas)
                .map(|c| CtaTrace::new(
                    (0..*warps).map(|_| warp_from_recipe(recipe, c as u64)).collect(),
                ))
                .collect();
            stream.launch(KernelTrace::new(format!("k{ki}"), 32 * *warps as u32, *regs, 0, ctav));
        }
        let bundle = TraceBundle::from_streams(vec![stream]);
        let mut buf = Vec::new();
        crisp_trace::codec::write_bundle(&bundle, &mut buf).expect("write");
        let back = crisp_trace::codec::read_bundle(&mut buf.as_slice()).expect("read");
        prop_assert_eq!(bundle, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Fuzz: any two-stream intra-SM quota split (both sides >= 1/8) lets
    /// both streams finish — no placement deadlock for any ratio.
    #[test]
    fn any_fg_ratio_completes(num in 1u32..8) {
        let gpu = GpuConfig::test_tiny();
        let spec = crisp_sim::PartitionSpec::fg_fractions(
            &gpu,
            [(StreamId(0), (num, 8)), (StreamId(1), (8 - num, 8))],
        );
        let mk = |name: &str| {
            let recipe: Vec<(u8, u64)> = (0..10).map(|i| ((i % 6) as u8, i as u64 * 37)).collect();
            let ctav: Vec<CtaTrace> = (0..4)
                .map(|c| CtaTrace::new(vec![warp_from_recipe(&recipe, c as u64); 2]))
                .collect();
            KernelTrace::new(name, 64, 16, 0, ctav)
        };
        let mut a = Stream::new(StreamId(0), StreamKind::Graphics);
        a.launch(mk("a"));
        let mut b = Stream::new(StreamId(1), StreamKind::Compute);
        b.launch(mk("b"));
        let mut gpu_sim = GpuSim::new(gpu, spec);
        gpu_sim.load(TraceBundle::from_streams(vec![a, b]));
        let r = gpu_sim.run();
        prop_assert_eq!(r.per_stream[&StreamId(0)].stats.ctas, 4);
        prop_assert_eq!(r.per_stream[&StreamId(1)].stats.ctas, 4);
    }
}
