//! Property-based tests over core data structures and invariants.
//!
//! The workspace carries no external crates, so instead of a proptest-style
//! framework these properties are exercised over many deterministic
//! pseudo-random cases drawn from a seeded xorshift generator. Failures
//! print the case seed so a case can be replayed in isolation.

use crisp_gfx::{batch, FilterMode, Texture, TextureFormat, Vec2};
use crisp_mem::{
    AccessKind, BankMap, CacheCore, CacheGeometry, DataClass, MemReq, ReqToken, StreamId,
    TapConfig, TapController,
};
use crisp_sim::{GpuConfig, GpuSim, PartitionSpec, Simulation};
use crisp_trace::{
    CtaTrace, Instr, KernelTrace, MemAccess, Op, Reg, Space, Stream, StreamKind, TraceBundle,
    WarpTrace,
};

const TOK: ReqToken = ReqToken { sm: 0, id: 0 };

/// A small deterministic PRNG (xorshift64*) for generating test cases.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Uniform f32 in `[lo, hi)`.
    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next() % (1 << 24)) as f32 / (1 << 24) as f32 * (hi - lo)
    }
}

/// Batching never exceeds the batch size and always covers every triangle
/// exactly once.
#[test]
fn batches_cover_all_triangles() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n_tris = rng.range(1, 200) as usize;
        let tris: Vec<(u32, u32, u32)> = (0..n_tris)
            .map(|_| {
                (
                    rng.range(0, 64) as u32,
                    rng.range(0, 64) as u32,
                    rng.range(0, 64) as u32,
                )
            })
            .collect();
        let batch_size = rng.range(3, 128) as usize;
        let indices: Vec<u32> = tris.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
        let batches = batch::vertex_batches(&indices, batch_size);
        let total_prims: usize = batches.iter().map(|b| b.prims.len()).sum();
        assert_eq!(total_prims, tris.len(), "seed {seed}");
        for b in &batches {
            assert!(b.unique.len() <= batch_size, "seed {seed}");
            // Every prim slot refers into the unique list.
            for p in &b.prims {
                for &slot in p {
                    assert!((slot as usize) < b.unique.len(), "seed {seed}");
                }
            }
        }
    }
}

/// Invocation counts are monotonically non-increasing in batch size and
/// bounded by [unique, 3 × prims].
#[test]
fn batching_invocation_bounds() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n_tris = rng.range(1, 100) as usize;
        let indices: Vec<u32> = (0..3 * n_tris).map(|_| rng.range(0, 32) as u32).collect();
        let small = batch::vs_invocation_count(&indices, 4);
        let big = batch::vs_invocation_count(&indices, 96);
        assert!(
            big <= small,
            "seed {seed}: bigger batches cannot shade more: {big} vs {small}"
        );
        let mut unique = indices.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(big >= unique.len() as u64, "seed {seed}");
        assert!(small <= indices.len() as u64, "seed {seed}");
    }
}

/// Coalescing: distinct chunk count is bounded by lane count and chunk
/// arithmetic is consistent across granularities.
#[test]
fn mem_access_chunking() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n = rng.range(1, 32) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.range(0, 1_000_000)).collect();
        let width = [1u8, 4, 8, 16][rng.range(0, 4) as usize];
        let m = MemAccess::scattered(Space::Global, DataClass::Compute, width, addrs.clone());
        let sectors = m.distinct_chunks(32);
        let lines = m.distinct_chunks(128);
        assert!(!sectors.is_empty(), "seed {seed}");
        assert!(
            lines.len() <= sectors.len(),
            "seed {seed}: lines cannot outnumber sectors"
        );
        assert!(
            sectors.len() <= addrs.len() * 2,
            "seed {seed}: a lane touches at most 2 sectors"
        );
        // Every sector's line must appear in the line set.
        for s in &sectors {
            assert!(lines.contains(&(s * 32 / 128)), "seed {seed}");
        }
    }
}

/// Cache invariant: after a fill, reading the same sector hits, and the
/// composition never exceeds capacity.
#[test]
fn cache_fill_then_hit() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let mut c = CacheCore::new(CacheGeometry {
            size_bytes: 16 << 10,
            assoc: 4,
        });
        let w = (0, c.num_sets());
        let n = rng.range(1, 200);
        for _ in 0..n {
            let a = rng.range(0, 1 << 20);
            let r = MemReq::read(a, StreamId(0), DataClass::Compute, TOK);
            let _ = c.access(&r, AccessKind::Read, w);
            let _ = c.fill(
                r.line_addr(),
                r.sector_in_line(),
                StreamId(0),
                DataClass::Compute,
                false,
                w,
            );
            // Immediately after the fill the sector must be present.
            let again = c.access(&r, AccessKind::Read, w);
            assert_eq!(again, crisp_mem::AccessOutcome::Hit, "seed {seed}");
        }
        let comp = c.composition();
        assert!(comp.valid_lines() <= comp.capacity_lines, "seed {seed}");
    }
}

/// TAP windows always tile the bank exactly, regardless of workload.
#[test]
fn tap_windows_always_tile() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let sets = rng.range(8, 128);
        let cfg = TapConfig {
            epoch_accesses: 500,
            sample_every: 1,
            min_sets: 1,
        };
        let mut t = TapController::new(vec![StreamId(0), StreamId(1)], sets, 16, cfg);
        let n = rng.range(0, 3000);
        for _ in 0..n {
            let s = rng.range(0, 2) as u32;
            let line = rng.range(0, 4096);
            t.observe(StreamId(s), line * 128);
        }
        let alloc = t.allocation();
        let total: u64 = alloc.iter().map(|(_, n)| n).sum();
        assert_eq!(total, sets, "seed {seed}");
        for (_, n) in alloc {
            assert!(n >= 1, "seed {seed}: every stream keeps its floor");
        }
        // Windows are contiguous and disjoint.
        let (s0, n0) = t.window(StreamId(0));
        let (s1, n1) = t.window(StreamId(1));
        assert_eq!(s0, 0, "seed {seed}");
        assert_eq!(s1, n0, "seed {seed}");
        assert_eq!(n0 + n1, sets, "seed {seed}");
    }
}

/// Bank maps always return a bank the stream is allowed to use.
#[test]
fn bank_map_respects_masks() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(seed);
        let addr = rng.range(0, 1 << 30);
        let n_banks = rng.range(2, 32) as u32;
        let a = StreamId(0);
        let b = StreamId(1);
        let m = BankMap::mig_even_split(n_banks, a, b);
        let ba = m.bank_of(a, addr);
        let bb = m.bank_of(b, addr);
        assert!(m.banks_for(a).contains(&ba), "seed {seed}");
        assert!(m.banks_for(b).contains(&bb), "seed {seed}");
        assert_ne!(
            ba, bb,
            "seed {seed}: even split keeps the streams on disjoint banks"
        );
    }
}

/// Texture sampling never produces addresses outside the texture's
/// allocation, at any LoD, for any UV.
#[test]
fn texture_samples_stay_in_bounds() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let u = rng.f32(-4.0, 4.0);
        let v = rng.f32(-4.0, 4.0);
        let lod = rng.f32(0.0, 12.0);
        let size = 1u32 << rng.range(2, 9);
        let base = 0x10_0000u64;
        let t = Texture::new(
            "t",
            size,
            size,
            1,
            TextureFormat::Rgba8,
            FilterMode::Bilinear,
            base,
        );
        for addr in t.sample_addrs(Vec2::new(u, v), lod, 0, false) {
            assert!(addr >= base, "seed {seed}");
            assert!(addr < base + t.size_bytes(), "seed {seed}");
        }
    }
}

/// Higher LoD never increases the distinct-texel footprint of a fixed set
/// of UVs (the Figure 7 merging property, generalised).
#[test]
fn mip_levels_monotonically_merge() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let n = rng.range(4, 32);
        let uvs: Vec<(f32, f32)> = (0..n)
            .map(|_| (rng.f32(0.0, 1.0), rng.f32(0.0, 1.0)))
            .collect();
        let t = Texture::new(
            "t",
            256,
            256,
            1,
            TextureFormat::Rgba8,
            FilterMode::Nearest,
            0,
        );
        let mut prev = usize::MAX;
        for level in 0..t.levels() {
            let mut addrs: Vec<u64> = uvs
                .iter()
                .flat_map(|&(u, v)| t.sample_addrs(Vec2::new(u, v), level as f32, 0, false))
                .collect();
            addrs.sort_unstable();
            addrs.dedup();
            assert!(
                addrs.len() <= prev,
                "seed {seed}: level {level} has {} texels, previous had {prev}",
                addrs.len()
            );
            prev = addrs.len();
        }
        // The top level is a single texel.
        assert_eq!(prev, 1, "seed {seed}");
    }
}

/// Build a random-but-valid warp trace from a recipe of (kind, value) pairs.
fn warp_from_recipe(ops: &[(u8, u64)], cta_id: u64) -> WarpTrace {
    let mut w = WarpTrace::new();
    for (i, &(kind, val)) in ops.iter().enumerate() {
        let dst = Reg(1 + (i % 20) as u16);
        match kind % 6 {
            0 => w.push(Instr::alu(Op::FpFma, dst, &[Reg(1 + (val % 20) as u16)])),
            1 => w.push(Instr::alu(Op::IntAlu, dst, &[])),
            2 => w.push(Instr::alu(Op::Sfu, dst, &[Reg(1 + (val % 20) as u16)])),
            3 => w.push(Instr::load(
                dst,
                MemAccess::coalesced(
                    Space::Global,
                    DataClass::Compute,
                    4,
                    (cta_id * 0x1_0000 + val % 0x8000) & !3,
                    32,
                ),
            )),
            4 => w.push(Instr::store(
                Reg(1 + (val % 20) as u16),
                MemAccess::coalesced(
                    Space::Global,
                    DataClass::Compute,
                    4,
                    (0x100_0000 + (cta_id * 0x1_0000 + val % 0x8000)) & !3,
                    32,
                ),
            )),
            _ => w.push(Instr::load(
                dst,
                MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
            )),
        }
    }
    w.seal();
    w
}

/// Draw a random kernel recipe: (warp recipe, warps per CTA, CTAs, regs).
fn random_kernel(rng: &mut Rng, max_ops: u64) -> (Vec<(u8, u64)>, usize, usize, u32) {
    let n_ops = rng.range(1, max_ops) as usize;
    let recipe: Vec<(u8, u64)> = (0..n_ops)
        .map(|_| (rng.range(0, 6) as u8, rng.range(0, 1_000_000)))
        .collect();
    (
        recipe,
        rng.range(1, 4) as usize,
        rng.range(1, 6) as usize,
        rng.range(8, 48) as u32,
    )
}

/// Fuzz: any structurally-valid kernel mix must run to completion on the
/// simulator without deadlock or panic, and conservation laws must hold
/// (CTAs committed == CTAs launched, instructions issued == trace
/// instructions).
#[test]
fn random_kernels_always_complete() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(seed);
        let mut stream = Stream::new(StreamId(0), StreamKind::Compute);
        let mut expected_instrs = 0u64;
        let mut expected_ctas = 0u64;
        let n_kernels = rng.range(1, 4);
        for ki in 0..n_kernels {
            let (recipe, warps, ctas, regs) = random_kernel(&mut rng, 40);
            let ctav: Vec<CtaTrace> = (0..ctas)
                .map(|c| {
                    CtaTrace::new(
                        (0..warps)
                            .map(|_| warp_from_recipe(&recipe, c as u64))
                            .collect(),
                    )
                })
                .collect();
            let k = KernelTrace::new(format!("fuzz{ki}"), 32 * warps as u32, regs, 0, ctav);
            expected_instrs += k.instr_count() as u64;
            expected_ctas += k.grid() as u64;
            stream.launch(k);
        }
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .occupancy_interval(0)
            .trace(TraceBundle::from_streams(vec![stream]))
            .run_or_panic();
        let st = &r.per_stream[&StreamId(0)].stats;
        assert_eq!(
            st.instructions, expected_instrs,
            "seed {seed}: every instruction must issue"
        );
        assert_eq!(st.ctas, expected_ctas, "seed {seed}: every CTA must commit");
        assert!(st.finish_cycle > 0, "seed {seed}");
    }
}

/// Codec: any bundle the fuzz generator produces survives a binary round
/// trip bit-exactly.
#[test]
fn codec_roundtrips_random_bundles() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed);
        let mut stream = Stream::new(StreamId(7), StreamKind::Compute);
        let marker_len = rng.range(0, 13) as usize;
        let marker: String = (0..marker_len)
            .map(|_| (b'a' + rng.range(0, 26) as u8) as char)
            .collect();
        stream.marker(marker);
        let n_kernels = rng.range(1, 3);
        for ki in 0..n_kernels {
            let (recipe, warps, ctas, regs) = random_kernel(&mut rng, 20);
            let ctav: Vec<CtaTrace> = (0..ctas.min(3))
                .map(|c| {
                    CtaTrace::new(
                        (0..warps.min(2))
                            .map(|_| warp_from_recipe(&recipe, c as u64))
                            .collect(),
                    )
                })
                .collect();
            stream.launch(KernelTrace::new(
                format!("k{ki}"),
                32 * warps as u32,
                regs,
                0,
                ctav,
            ));
        }
        let bundle = TraceBundle::from_streams(vec![stream]);
        let mut buf = Vec::new();
        crisp_trace::codec::write_bundle(&bundle, &mut buf).expect("write");
        let back = crisp_trace::TraceInput::reader(std::io::Cursor::new(buf))
            .open()
            .and_then(|mut s| s.to_bundle())
            .expect("read");
        assert_eq!(bundle, back, "seed {seed}");
    }
}

/// Streaming: demand-paging CTAs out of an indexed container in a random
/// fetch/release order reproduces every CTA bit-exactly, and the resident
/// window shrinks back as CTAs are released.
#[test]
fn streaming_source_pages_random_bundles_bit_exactly() {
    use crisp_trace::{KernelId, TraceInput};
    for seed in 0..16u64 {
        let mut rng = Rng::new(seed.wrapping_add(100));
        let mut stream = Stream::new(StreamId(1), StreamKind::Compute);
        let n_kernels = rng.range(1, 4);
        for ki in 0..n_kernels {
            let (recipe, warps, ctas, regs) = random_kernel(&mut rng, 16);
            let ctav: Vec<CtaTrace> = (0..ctas.clamp(1, 5))
                .map(|c| {
                    CtaTrace::new(
                        (0..warps.min(2))
                            .map(|_| warp_from_recipe(&recipe, c as u64))
                            .collect(),
                    )
                })
                .collect();
            stream.launch(KernelTrace::new(
                format!("k{ki}"),
                32 * warps as u32,
                regs,
                0,
                ctav,
            ));
        }
        let bundle = TraceBundle::from_streams(vec![stream]);
        let mut buf = Vec::new();
        crisp_trace::codec::write_bundle(&bundle, &mut buf).expect("write");
        let mut src = TraceInput::reader(std::io::Cursor::new(buf))
            .open()
            .expect("open");
        assert!(src.is_streaming(), "seed {seed}: v2 containers stream");

        // Fetch every (kernel, cta) pair in a seeded random order, comparing
        // against the materialized original, releasing as we go.
        let mut pairs: Vec<(u32, usize)> = Vec::new();
        let kernels: Vec<&KernelTrace> = bundle.streams[0].kernels().collect();
        for (ki, k) in kernels.iter().enumerate() {
            for ci in 0..k.ctas.len() {
                pairs.push((ki as u32, ci));
            }
        }
        for i in (1..pairs.len()).rev() {
            pairs.swap(i, rng.range(0, (i + 1) as u64) as usize);
        }
        for &(ki, ci) in &pairs {
            let cta = src.fetch_cta(KernelId(ki), ci).expect("fetch");
            assert_eq!(*cta, kernels[ki as usize].ctas[ci], "seed {seed}");
            src.release_cta(KernelId(ki), ci);
        }
        assert_eq!(
            src.stats().resident_ctas,
            0,
            "seed {seed}: every fetch was released"
        );
        assert_eq!(
            src.stats().ctas_decoded as usize,
            pairs.len(),
            "seed {seed}"
        );
    }
}

/// A corrupted CTA index — spans pointing out of bounds, spans overlapping,
/// or an index that disagrees with the payload — must fail `open()` with
/// `Err`, never a panic and never a bogus decode.
#[test]
fn corrupt_cta_index_is_rejected_at_open() {
    let mut rng = Rng::new(23);
    let mut stream = Stream::new(StreamId(0), StreamKind::Compute);
    let (recipe, warps, _, regs) = random_kernel(&mut rng, 16);
    let ctav: Vec<CtaTrace> = (0..4)
        .map(|c| {
            CtaTrace::new(
                (0..warps.min(2))
                    .map(|_| warp_from_recipe(&recipe, c as u64))
                    .collect(),
            )
        })
        .collect();
    stream.launch(KernelTrace::new("k", 32 * warps as u32, regs, 0, ctav));
    let bundle = TraceBundle::from_streams(vec![stream]);

    type Mutation = (
        &'static str,
        fn(usize, (u64, u64)) -> (u64, u64),
        &'static [u8],
    );
    let cases: [Mutation; 4] = [
        (
            "span offset past the payload",
            |_, (_, len)| (u64::MAX / 2, len),
            &[],
        ),
        (
            "span length past the payload",
            |_, (off, _)| (off, u64::MAX / 2),
            &[],
        ),
        (
            "overlapping spans",
            |i, (off, len)| {
                if i == 1 {
                    (off.saturating_sub(1), len)
                } else {
                    (off, len)
                }
            },
            &[],
        ),
        ("payload bytes no span covers", |_, s| s, b"trailing-junk"),
    ];
    for (what, mutate, pad) in cases {
        let mut buf = Vec::new();
        crisp_trace::codec::write_bundle_mutated(&bundle, &mut buf, mutate, pad).expect("write");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crisp_trace::TraceInput::reader(std::io::Cursor::new(buf))
                .open()
                .and_then(|mut s| s.to_bundle())
        }));
        let decoded = result.unwrap_or_else(|_| panic!("{what}: panicked"));
        assert!(decoded.is_err(), "{what}: must be rejected with Err");
    }
}

/// Shared corruption harness for binary readers: every strided truncation
/// of a valid byte image must be rejected with `Err`, and every single-bit
/// flip must either decode or error — never panic or allocate unboundedly.
/// Both the `CRSP` trace codec and the `CKPT` checkpoint reader are held to
/// this contract.
fn assert_reader_robust<T>(bytes: &[u8], read: impl Fn(&[u8]) -> std::io::Result<T>, what: &str) {
    assert!(read(bytes).is_ok(), "{what}: pristine bytes must decode");
    let stride = (bytes.len() / 64).max(1);
    for cut in (0..bytes.len()).step_by(stride) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            read(&bytes[..cut]).is_err()
        }));
        let rejected = result
            .unwrap_or_else(|_| panic!("{what}: truncation at {cut}/{} panicked", bytes.len()));
        assert!(rejected, "{what}: truncation at {cut} must be rejected");
    }
    for i in (0..bytes.len()).step_by(stride) {
        for bit in [0u8, 3, 7] {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 1 << bit;
            // A flipped payload byte may still decode to different-but-valid
            // data; the contract is only that it never panics or OOMs.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = read(&flipped);
            }));
            assert!(
                result.is_ok(),
                "{what}: bit flip at byte {i} bit {bit} panicked"
            );
        }
    }
}

/// Corrupt `CRSP` bundles must be rejected with `Err`, never a panic.
#[test]
fn corrupt_trace_bundles_are_rejected_not_fatal() {
    let mut rng = Rng::new(11);
    let mut stream = Stream::new(StreamId(3), StreamKind::Compute);
    stream.marker("phase");
    for ki in 0..2 {
        let (recipe, warps, ctas, regs) = random_kernel(&mut rng, 20);
        let ctav: Vec<CtaTrace> = (0..ctas.min(3))
            .map(|c| {
                CtaTrace::new(
                    (0..warps.min(2))
                        .map(|_| warp_from_recipe(&recipe, c as u64))
                        .collect(),
                )
            })
            .collect();
        stream.launch(KernelTrace::new(
            format!("k{ki}"),
            32 * warps as u32,
            regs,
            0,
            ctav,
        ));
    }
    let bundle = TraceBundle::from_streams(vec![stream]);
    let mut bytes = Vec::new();
    crisp_trace::codec::write_bundle(&bundle, &mut bytes).expect("write");
    assert_reader_robust(
        &bytes,
        |b| {
            crisp_trace::TraceInput::reader(std::io::Cursor::new(b.to_vec()))
                .open()
                .and_then(|mut s| s.to_bundle())
        },
        "CRSP bundle",
    );
}

/// Corrupt `CKPT` checkpoints must be rejected with `Err`, never a panic —
/// including mid-run images with live warps, caches, and telemetry.
#[test]
fn corrupt_checkpoints_are_rejected_not_fatal() {
    let mut rng = Rng::new(5);
    let mut stream = Stream::new(StreamId(0), StreamKind::Compute);
    for ki in 0..2 {
        let (recipe, warps, ctas, regs) = random_kernel(&mut rng, 30);
        let ctav: Vec<CtaTrace> = (0..ctas)
            .map(|c| {
                CtaTrace::new(
                    (0..warps)
                        .map(|_| warp_from_recipe(&recipe, c as u64))
                        .collect(),
                )
            })
            .collect();
        stream.launch(KernelTrace::new(
            format!("k{ki}"),
            32 * warps as u32,
            regs,
            0,
            ctav,
        ));
    }
    let mut sim = Simulation::builder()
        .gpu(GpuConfig::test_tiny())
        .telemetry(crisp_sim::Telemetry::FULL)
        .occupancy_interval(20)
        .composition_interval(30)
        .counter_interval(25)
        .trace(TraceBundle::from_streams(vec![stream]))
        .build();
    sim.run_until(60).unwrap();
    let mut bytes = Vec::new();
    sim.write_checkpoint(&mut bytes).expect("serialize");
    assert_reader_robust(&bytes, |b| GpuSim::read_checkpoint(b), "CKPT checkpoint");
}

/// Fuzz: any two-stream intra-SM quota split (both sides >= 1/8) lets both
/// streams finish — no placement deadlock for any ratio.
#[test]
fn any_fg_ratio_completes() {
    for num in 1u32..8 {
        let gpu = GpuConfig::test_tiny();
        let spec = PartitionSpec::fg_fractions(
            &gpu,
            [(StreamId(0), (num, 8)), (StreamId(1), (8 - num, 8))],
        );
        let mk = |name: &str| {
            let recipe: Vec<(u8, u64)> = (0..10).map(|i| ((i % 6) as u8, i as u64 * 37)).collect();
            let ctav: Vec<CtaTrace> = (0..4)
                .map(|c| CtaTrace::new(vec![warp_from_recipe(&recipe, c as u64); 2]))
                .collect();
            KernelTrace::new(name, 64, 16, 0, ctav)
        };
        let mut a = Stream::new(StreamId(0), StreamKind::Graphics);
        a.launch(mk("a"));
        let mut b = Stream::new(StreamId(1), StreamKind::Compute);
        b.launch(mk("b"));
        let r = Simulation::builder()
            .gpu(gpu)
            .partition(spec)
            .trace(TraceBundle::from_streams(vec![a, b]))
            .run_or_panic();
        assert_eq!(r.per_stream[&StreamId(0)].stats.ctas, 4, "ratio {num}/8");
        assert_eq!(r.per_stream[&StreamId(1)].stats.ctas, 4, "ratio {num}/8");
    }
}
