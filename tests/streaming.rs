//! Streaming trace input: demand-paging a CRSP container must be an
//! implementation detail, never an observable one.
//!
//! The `TraceSource` contract (see `crisp_trace::source`) is that a
//! simulation fed a version-2 container from disk — paging CTAs in on
//! dispatch and out at retire — produces results *byte-identical* to the
//! same simulation fed the fully materialized bundle, at any worker-thread
//! count, across checkpoint/resume, and through the version-1
//! compatibility scan. These tests hold the whole `SimResult` to that
//! contract: cycles, stats, telemetry exports, and the paging counters
//! themselves.

use std::path::PathBuf;

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_sim::{GpuSim, SimResult};
use crisp_trace::codec;

/// A small GPU with enough SMs that 4 workers get uneven shards.
fn gpu() -> GpuConfig {
    let mut cfg = GpuConfig::test_tiny();
    cfg.n_sms = 6;
    cfg
}

/// A mixed bundle: one rendered frame plus the VIO kernel chain.
fn bundle() -> TraceBundle {
    let frame = Scene::build(SceneId::SponzaKhronos, 0.2).render(64, 36, false, GRAPHICS_STREAM);
    concurrent_bundle(frame.trace, vio(COMPUTE_STREAM, ComputeScale::tiny()))
}

/// Save the workload once per test to a unique temp path.
fn saved_container(tag: &str, v1: bool) -> PathBuf {
    let p = std::env::temp_dir().join(format!("crisp_streaming_{tag}_{}.crsp", std::process::id()));
    if v1 {
        let mut f = std::fs::File::create(&p).expect("create v1 container");
        codec::write_bundle_v1(&bundle(), &mut f).expect("write v1 container");
    } else {
        codec::save(&bundle(), &p).expect("save container");
    }
    p
}

fn builder(trace: impl Into<crisp_sim::TraceInput>, threads: usize) -> SimulationBuilder {
    Simulation::builder()
        .gpu(gpu())
        .partition(PartitionSpec::greedy())
        .threads(threads)
        .telemetry(Telemetry::FULL)
        .occupancy_interval(100)
        .counter_interval(100)
        .trace(trace)
}

/// The full result must match, including the byte-exact exports users diff
/// across machines — and the paging counters, which logical accounting
/// keeps identical whichever backing served the CTAs.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.per_stream, b.per_stream, "{what}: per-stream stats");
    assert_eq!(a.l1_stats, b.l1_stats, "{what}: L1 stats");
    assert_eq!(a.l2_stats, b.l2_stats, "{what}: L2 stats");
    assert_eq!(a.kernel_log, b.kernel_log, "{what}: kernel log");
    assert_eq!(a.trace, b.trace, "{what}: trace paging stats");
    assert_eq!(
        a.metrics.to_text(),
        b.metrics.to_text(),
        "{what}: metrics snapshot"
    );
    assert_eq!(
        a.chrome_trace_json(),
        b.chrome_trace_json(),
        "{what}: Chrome trace export"
    );
    assert_eq!(a.counters_csv(), b.counters_csv(), "{what}: counters CSV");
}

#[test]
fn streaming_is_byte_identical_to_materialized_at_any_thread_count() {
    let materialized = builder(bundle(), 1).run_or_panic();
    let path = saved_container("identical", false);
    for threads in [1, 2, 4] {
        let streamed = builder(path.as_path(), threads).run_or_panic();
        assert_identical(
            &materialized,
            &streamed,
            &format!("streaming @ {threads} threads"),
        );
    }
    // The streamed run really paged: its peak window stayed well under the
    // whole-bundle footprint a materialized load would physically occupy.
    let whole: u64 = bundle()
        .streams
        .iter()
        .flat_map(|s| s.kernels())
        .flat_map(|k| k.ctas.iter())
        .map(crisp_trace::cta_resident_cost)
        .sum();
    assert!(
        materialized.trace.peak_resident_bytes < whole,
        "peak window {} should undercut the materialized footprint {whole}",
        materialized.trace.peak_resident_bytes,
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn checkpoint_resume_mid_stream_is_byte_identical() {
    let path = saved_container("resume", false);
    let full = builder(path.as_path(), 1).run_or_panic();

    let mut sim = builder(path.as_path(), 1).try_build().expect("build");
    let done = sim.run_until(full.cycles / 2).expect("first half");
    assert!(!done, "workload must outlast the checkpoint cycle");
    let mut bytes = Vec::new();
    sim.write_checkpoint(&mut bytes).expect("serialize");

    for threads in [1, 2, 4] {
        let mut resumed = GpuSim::read_checkpoint(&bytes[..]).expect("deserialize");
        resumed.set_threads(threads);
        let r = resumed.run_or_panic();
        assert_identical(&full, &r, &format!("mid-stream resume @ {threads} threads"));
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn v1_container_runs_through_the_compat_scan() {
    let materialized = builder(bundle(), 1).run_or_panic();
    let path = saved_container("v1", true);
    let r = builder(path.as_path(), 1).run_or_panic();
    assert_identical(&materialized, &r, "v1 compat");
    let _ = std::fs::remove_file(path);
}
